package sim

import (
	"strings"
	"testing"

	"erms/internal/graph"
	"erms/internal/workload"
)

// resConfig is singleMSConfig plus an enabled resilience layer.
func resConfig(t *testing.T, ratePerMin float64, containers int, res Resilience) Config {
	t.Helper()
	cfg := singleMSConfig(t, ratePerMin, containers)
	cfg.Resilience = &res
	return cfg
}

func runRes(t *testing.T, cfg Config) *Result {
	t.Helper()
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt.Run()
}

func TestResilienceValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Resilience)
		want string
	}{
		{"negative sla multiple", func(r *Resilience) { r.TimeoutSLAMultiple = -1 }, "TimeoutSLAMultiple"},
		{"negative request timeout", func(r *Resilience) { r.RequestTimeoutMs = -5 }, "RequestTimeoutMs"},
		{"negative attempt timeout", func(r *Resilience) { r.AttemptTimeoutMs = -5 }, "AttemptTimeoutMs"},
		{"jitter above one", func(r *Resilience) { r.RetryJitter = 1.5 }, "RetryJitter"},
		{"negative jitter", func(r *Resilience) { r.RetryJitter = -0.1 }, "RetryJitter"},
		{"negative retry budget", func(r *Resilience) { r.RetryBudget = -0.1 }, "RetryBudget"},
		{"breaker rate above one", func(r *Resilience) { r.BreakerFailureRate = 2 }, "BreakerFailureRate"},
		{"negative shed wait", func(r *Resilience) { r.ShedMaxWaitMs = -1 }, "ShedMaxWaitMs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res Resilience
			tc.mut(&res)
			cfg := singleMSConfig(t, 100, 1)
			cfg.Resilience = &res
			_, err := NewRuntime(cfg)
			if err == nil {
				t.Fatalf("invalid resilience accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestConfigValidationRanges is the table-driven range check on the base
// simulation parameters added alongside the resilience layer.
func TestConfigValidationRanges(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"sample rate above one", func(c *Config) { c.SampleRate = 1.5 }, "SampleRate"},
		{"negative sample rate", func(c *Config) { c.SampleRate = -0.2 }, "SampleRate"},
		{"negative network delay", func(c *Config) { c.NetworkDelayMs = -1 }, "NetworkDelayMs"},
		{"negative think time", func(c *Config) { c.ThinkTimeMs = -1 }, "ThinkTimeMs"},
		{"negative warmup", func(c *Config) { c.WarmupMin = -1 }, "WarmupMin"},
		{"warmup at duration", func(c *Config) { c.WarmupMin = 2 }, "WarmupMin"},
		{"warmup above duration", func(c *Config) { c.WarmupMin = 3 }, "WarmupMin"},
		{"negative delta", func(c *Config) { c.Delta = -0.1 }, "Delta"},
		{"delta above one", func(c *Config) { c.Delta = 1.5 }, "Delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := singleMSConfig(t, 100, 1) // DurationMin 2
			tc.mut(&cfg)
			_, err := NewRuntime(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
	// Boundary values that must remain valid.
	ok := singleMSConfig(t, 100, 1)
	ok.SampleRate = 1
	ok.Delta = 0 // strict-priority degeneration, used by the motivation sweeps
	if _, err := NewRuntime(ok); err != nil {
		t.Fatalf("boundary config rejected: %v", err)
	}
}

// TestDeadlinePropagationFailsFast pins the deadline arithmetic: with a
// request deadline far below the chain's service time, requests error out
// and downstream calls are skipped without executing (DeadlineSkips).
func TestDeadlinePropagationFailsFast(t *testing.T) {
	g := graph.New("svc", "A")
	g.AddStage(g.Root, "B")
	cfg := Config{
		Seed:    1,
		Cluster: buildCluster(t, 2, map[string]int{"A": 1, "B": 1}),
		Profiles: map[string]ServiceProfile{
			"A": {BaseMs: 2, CV: 0.3},
			"B": {BaseMs: 2, CV: 0.3},
		},
		Graphs:         []*graph.Graph{g},
		Patterns:       map[string]workload.Pattern{"svc": workload.Static{Rate: 600}},
		DurationMin:    2,
		WarmupMin:      0.5,
		NetworkDelayMs: 0.5,
		Resilience:     &Resilience{RequestTimeoutMs: 2}, // chain needs ≥ 4ms service + 2ms network
	}
	res := runRes(t, cfg)
	sr := res.PerService["svc"]
	if sr.Errors == 0 {
		t.Fatal("impossible deadline produced no errors")
	}
	if sr.Count > sr.Errors/10 {
		t.Fatalf("too many successes under an impossible deadline: %d ok vs %d errors", sr.Count, sr.Errors)
	}
	if res.Data.DeadlineSkips == 0 {
		t.Fatal("no downstream call was skipped on an expired deadline")
	}
	if res.Data.Timeouts == 0 {
		t.Fatal("no attempt timeout fired")
	}
	if got := sr.ErrorRate(); got < 0.9 {
		t.Fatalf("error rate %v, want ≈ 1", got)
	}
}

// TestRetriesMaskCrash pins the retry happy path: a transient crash fails
// in-flight calls, and budgeted retries recover most of them on the healthy
// replica, cutting the client-visible error count versus no retries.
func TestRetriesMaskCrash(t *testing.T) {
	mk := func(maxAttempts int) (*ServiceResult, DataStats) {
		res := Resilience{
			RequestTimeoutMs: 200,
			AttemptTimeoutMs: 50,
			MaxAttempts:      maxAttempts,
			RetryBudget:      0.2,
			RetryBurst:       50,
		}
		// 60k/min over 2×4 threads at 2ms ≈ 25% utilization: the healthy
		// replica has ample headroom to absorb retried work. Several
		// crash/recover cycles guarantee in-flight calls get severed.
		cfg := resConfig(t, 60_000, 2, res)
		cfg.DurationMin = 2
		cfg.WarmupMin = 0.25
		cfg.Failures = []Failure{
			{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 0.7},
			{Microservice: "A", Index: 0, AtMin: 0.9, RecoverMin: 1.1},
			{Microservice: "A", Index: 0, AtMin: 1.3, RecoverMin: 1.5},
		}
		r := runRes(t, cfg)
		return r.PerService["svc"], r.Data
	}
	noRetry, d0 := mk(1)
	retry, d1 := mk(3)
	if d0.CrashFailures == 0 || d1.CrashFailures == 0 {
		t.Fatalf("crash failed no in-flight calls: %d / %d", d0.CrashFailures, d1.CrashFailures)
	}
	if d0.Retries != 0 {
		t.Fatalf("MaxAttempts=1 retried %d times", d0.Retries)
	}
	if d1.Retries == 0 {
		t.Fatal("MaxAttempts=3 never retried")
	}
	if noRetry.Errors == 0 {
		t.Fatal("crash without retries produced no client-visible errors")
	}
	if retry.Errors*2 > noRetry.Errors {
		t.Fatalf("retries did not mask the crash: %d errors with retries vs %d without", retry.Errors, noRetry.Errors)
	}
}

// TestRetryBudgetCaps pins the token bucket: under a sustained blackout a
// zero earn rate retries without bound while a small budget runs dry, so the
// budgeted run performs far fewer retries and reports budget exhaustion.
func TestRetryBudgetCaps(t *testing.T) {
	mk := func(budget float64) DataStats {
		res := Resilience{
			RequestTimeoutMs: 100,
			MaxAttempts:      4,
			RetryBudget:      budget,
			RetryBurst:       5,
		}
		cfg := resConfig(t, 6_000, 1, res)
		cfg.DurationMin = 2
		cfg.WarmupMin = 0.25
		cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.5}}
		return runRes(t, cfg).Data
	}
	unbounded := mk(0)
	budgeted := mk(0.05)
	if unbounded.RetryBudgetExhausted != 0 {
		t.Fatalf("unbounded run reported budget exhaustion %d times", unbounded.RetryBudgetExhausted)
	}
	if budgeted.RetryBudgetExhausted == 0 {
		t.Fatal("budgeted run never exhausted its tokens during the blackout")
	}
	if budgeted.Retries*2 > unbounded.Retries {
		t.Fatalf("budget did not cap retries: %d vs %d unbounded", budgeted.Retries, unbounded.Retries)
	}
}

// TestBreakerOpensAndRecovers pins the breaker state machine end to end:
// failures during a blackout trip it open (short-circuiting later calls);
// after recovery a half-open probe succeeds, the breaker closes, and traffic
// completes again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	res := Resilience{
		RequestTimeoutMs:   100,
		BreakerFailureRate: 0.5,
		BreakerWindow:      16,
		BreakerMinSamples:  5,
		BreakerCooldownMs:  200,
	}
	cfg := resConfig(t, 6_000, 1, res)
	cfg.DurationMin = 3
	cfg.WarmupMin = 0
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.0}}
	r := runRes(t, cfg)
	sr := r.PerService["svc"]
	if r.Data.BreakerOpens == 0 {
		t.Fatal("breaker never opened during the blackout")
	}
	if r.Data.BreakerShortCircuits == 0 {
		t.Fatal("open breaker short-circuited no calls")
	}
	// ~2 of 3 minutes are healthy; the breaker must have closed again.
	if perMin := float64(sr.Count) / r.SimulatedMin; perMin < 6000*0.5 {
		t.Fatalf("throughput %v/min after recovery, breaker appears stuck open", perMin)
	}
	if sr.Errors == 0 {
		t.Fatal("blackout produced no errors")
	}
}

// TestShedBoundsQueueWait pins admission control: a 4× overloaded container
// sheds instead of queueing without bound, keeping the latency of accepted
// requests near the wait bound.
func TestShedBoundsQueueWait(t *testing.T) {
	res := Resilience{
		Shed:          true,
		ShedMaxWaitMs: 10,
	}
	// 1 container × 4 threads × 2ms ⇒ capacity 120k/min; offer 4×.
	cfg := resConfig(t, 480_000, 1, res)
	cfg.DurationMin = 1.5
	cfg.WarmupMin = 0.25
	r := runRes(t, cfg)
	sr := r.PerService["svc"]
	if r.Data.Shed == 0 {
		t.Fatal("overload shed nothing")
	}
	if sr.Count == 0 {
		t.Fatal("everything was shed")
	}
	if p95 := sr.P95(); p95 > 40 {
		t.Fatalf("accepted-request p95 %v ms despite a 10ms wait bound", p95)
	}
}

// TestAllDownFailsFastWhenEnabled pins the zero-survivors contract with
// resilience on: calls fail fast with ErrUnavailable instead of parking, so
// the tail stays flat while errors absorb the blackout. (The disabled-path
// park-until-recovery contract is pinned by
// TestFailureAllContainersDownThenRecover.)
func TestAllDownFailsFastWhenEnabled(t *testing.T) {
	res := Resilience{RequestTimeoutMs: 500}
	cfg := resConfig(t, 3_000, 1, res)
	cfg.DurationMin = 3
	cfg.WarmupMin = 0
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.0}}
	r := runRes(t, cfg)
	sr := r.PerService["svc"]
	if r.Data.Unavailable == 0 {
		t.Fatal("no call failed fast during the blackout")
	}
	if sr.Errors == 0 {
		t.Fatal("blackout produced no errors")
	}
	// Fail-fast means no parked 30-second tail (contrast: the disabled path
	// asserts p95 ≥ 100ms from parking in this exact scenario).
	if p95 := sr.P95(); p95 > 50 {
		t.Fatalf("p95 %v ms: failed-fast blackout should not inflate the success tail", p95)
	}
	if sr.Count == 0 {
		t.Fatal("no request succeeded outside the blackout")
	}
}

// TestClosedLoopSelfThrottlesThroughBlackout is the ClosedUsers × Failures
// contract on the historical (resilience-disabled) path: when the only
// container is down, parked requests block their users, the closed loop
// self-throttles to ~zero, and throughput recovers after RecoverMin.
func TestClosedLoopSelfThrottlesThroughBlackout(t *testing.T) {
	cfg := singleMSConfig(t, 0, 1)
	cfg.Patterns = nil
	cfg.ClosedUsers = map[string]int{"svc": 50}
	cfg.ThinkTimeMs = 100
	cfg.DurationMin = 3
	cfg.WarmupMin = 0
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 1.0, RecoverMin: 2.0}}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Run()
	perMinute := map[int]float64{}
	for _, s := range r.Samples {
		if s.Microservice == "A" {
			perMinute[s.Minute] = s.PerContainerCalls
		}
	}
	healthy, blackout, recovered := perMinute[0], perMinute[1], perMinute[2]
	if healthy == 0 {
		t.Fatal("no calls before the blackout")
	}
	// All 50 users park on the downed container within moments of the
	// crash, so the blackout minute serves almost nothing.
	if blackout > healthy/4 {
		t.Fatalf("closed loop did not self-throttle: %v calls in blackout minute vs %v healthy", blackout, healthy)
	}
	if recovered < healthy/2 {
		t.Fatalf("throughput did not recover after RecoverMin: %v vs %v healthy", recovered, healthy)
	}
	if r.PerService["svc"].Count == 0 {
		t.Fatal("no requests measured")
	}
}

// TestClosedLoopLivenessWithFailFast pins that a request error re-schedules
// the closed-loop user exactly like a success: with every container down for
// the whole run and fail-fast enabled, users keep cycling and accumulate
// errors instead of deadlocking on a request that never completes.
func TestClosedLoopLivenessWithFailFast(t *testing.T) {
	res := Resilience{RequestTimeoutMs: 50}
	cfg := resConfig(t, 0, 1, res)
	cfg.Patterns = nil
	cfg.ClosedUsers = map[string]int{"svc": 20}
	cfg.ThinkTimeMs = 100
	cfg.DurationMin = 2
	cfg.WarmupMin = 0
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.01}} // never recovers
	r := runRes(t, cfg)
	sr := r.PerService["svc"]
	// 20 users cycling every ~100ms for ~2min ⇒ thousands of error cycles.
	if sr.Errors < 1000 {
		t.Fatalf("users deadlocked: only %d error cycles", sr.Errors)
	}
}

// TestDisabledPathReportsZeroDataStats pins that the infallible path keeps
// the resilience counters untouched.
func TestDisabledPathReportsZeroDataStats(t *testing.T) {
	cfg := singleMSConfig(t, 6_000, 2)
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.0}}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.Run()
	if r.Data != (DataStats{}) {
		t.Fatalf("disabled path recorded data-plane stats: %+v", r.Data)
	}
	if sr := r.PerService["svc"]; sr.Errors != 0 {
		t.Fatalf("disabled path reported %d errors", sr.Errors)
	}
}

// TestResilienceDeterminism pins the determinism contract with every
// resilience feature enabled at once.
func TestResilienceDeterminism(t *testing.T) {
	run := func() (float64, DataStats) {
		res := Resilience{
			RequestTimeoutMs:   100,
			AttemptTimeoutMs:   25,
			MaxAttempts:        3,
			RetryBackoffMs:     2,
			RetryJitter:        0.3,
			RetryBudget:        0.1,
			BreakerFailureRate: 0.5,
			Shed:               true,
		}
		cfg := resConfig(t, 40_000, 2, res)
		cfg.DurationMin = 2
		cfg.WarmupMin = 0.25
		cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.25}}
		r := runRes(t, cfg)
		return r.PerService["svc"].P95(), r.Data
	}
	p1, d1 := run()
	p2, d2 := run()
	if p1 != p2 || d1 != d2 {
		t.Fatalf("resilient run not deterministic: p95 %v vs %v, data %+v vs %+v", p1, d1, p2, d2)
	}
}
