package sim

import "testing"

// BenchmarkEngineSchedule measures the cost of pushing and draining events
// through the engine's heap — the innermost loop of every simulation. With
// the typed heap this should be ~0 allocs/op once the backing array and the
// closure are amortized.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	var fired int
	fn := func() { fired++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A burst of out-of-order schedules followed by a drain, like a
		// wave of arrivals with staggered completions.
		for k := 0; k < 64; k++ {
			eng.Schedule(float64((k*37)%64), fn)
		}
		eng.Run(eng.Now() + 64)
	}
	if fired != b.N*64 {
		b.Fatalf("fired %d, want %d", fired, b.N*64)
	}
}

// TestEngineScheduleSteadyStateZeroAlloc is the allocation gate on the
// simulator's innermost loop: once the heap's backing array is warm,
// scheduling and draining events must not allocate. The resilience layer
// must keep this true — its bookkeeping lives off the disabled path.
func TestEngineScheduleSteadyStateZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	warm := func() {
		for k := 0; k < 64; k++ {
			eng.Schedule(float64((k*37)%64), fn)
		}
		eng.Run(eng.Now() + 64)
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("engine schedule/drain allocates %.1f per wave, want 0", allocs)
	}
}
