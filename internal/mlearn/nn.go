package mlearn

import (
	"errors"

	"erms/internal/stats"
)

// NNConfig configures the feed-forward network baseline: the paper's Fig. 10
// compares against a three-layer network with 64 neurons.
type NNConfig struct {
	// Hidden is the width of the hidden layer. Default 64.
	Hidden int
	// Epochs is the number of passes over the training set. Default 200.
	Epochs int
	// LearningRate for SGD. Default 0.01.
	LearningRate float64
	// Batch is the minibatch size. Default 32.
	Batch int
	// Seed controls weight initialization and shuffling.
	Seed uint64
}

func (c NNConfig) withDefaults() NNConfig {
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	return c
}

// NN is a fitted input→hidden(ReLU)→output regression network with input and
// target standardization baked into Predict.
type NN struct {
	inDim  int
	hidden int

	w1 []float64 // hidden x in
	b1 []float64 // hidden
	w2 []float64 // hidden
	b2 float64

	xMean, xStd []float64
	yMean, yStd float64
}

// FitNN trains the network with minibatch SGD on squared loss.
func FitNN(x [][]float64, y []float64, cfg NNConfig) (*NN, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("mlearn: FitNN empty or mismatched input")
	}
	cfg = cfg.withDefaults()
	d := len(x[0])
	for _, row := range x {
		if len(row) != d {
			return nil, errors.New("mlearn: FitNN ragged rows")
		}
	}
	n := len(x)
	net := &NN{
		inDim:  d,
		hidden: cfg.Hidden,
		w1:     make([]float64, cfg.Hidden*d),
		b1:     make([]float64, cfg.Hidden),
		w2:     make([]float64, cfg.Hidden),
		xMean:  make([]float64, d),
		xStd:   make([]float64, d),
	}

	// Standardize features and target; remember parameters for Predict.
	for f := 0; f < d; f++ {
		var m stats.Moments
		for i := 0; i < n; i++ {
			m.Add(x[i][f])
		}
		net.xMean[f] = m.Mean()
		net.xStd[f] = m.StdDev()
		if net.xStd[f] == 0 {
			net.xStd[f] = 1
		}
	}
	var my stats.Moments
	for _, v := range y {
		my.Add(v)
	}
	net.yMean, net.yStd = my.Mean(), my.StdDev()
	if net.yStd == 0 {
		net.yStd = 1
	}
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for f := 0; f < d; f++ {
			row[f] = (x[i][f] - net.xMean[f]) / net.xStd[f]
		}
		xs[i] = row
		ys[i] = (y[i] - net.yMean) / net.yStd
	}

	r := stats.NewRNG(cfg.Seed + 1)
	for i := range net.w1 {
		net.w1[i] = r.NormFloat64() * 0.3
	}
	for i := range net.w2 {
		net.w2[i] = r.NormFloat64() * 0.3
	}

	hid := make([]float64, cfg.Hidden)
	gw1 := make([]float64, len(net.w1))
	gb1 := make([]float64, cfg.Hidden)
	gw2 := make([]float64, cfg.Hidden)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.Batch {
			end := start + cfg.Batch
			if end > n {
				end = n
			}
			for i := range gw1 {
				gw1[i] = 0
			}
			for i := 0; i < cfg.Hidden; i++ {
				gb1[i], gw2[i] = 0, 0
			}
			gb2 := 0.0
			for _, idx := range order[start:end] {
				in := xs[idx]
				// Forward.
				out := net.b2
				for h := 0; h < cfg.Hidden; h++ {
					z := net.b1[h]
					base := h * d
					for f := 0; f < d; f++ {
						z += net.w1[base+f] * in[f]
					}
					if z < 0 {
						z = 0
					}
					hid[h] = z
					out += net.w2[h] * z
				}
				// Backward (squared loss).
				diff := out - ys[idx]
				gb2 += diff
				for h := 0; h < cfg.Hidden; h++ {
					gw2[h] += diff * hid[h]
					if hid[h] > 0 {
						gh := diff * net.w2[h]
						gb1[h] += gh
						base := h * d
						for f := 0; f < d; f++ {
							gw1[base+f] += gh * in[f]
						}
					}
				}
			}
			scale := cfg.LearningRate / float64(end-start)
			for i := range net.w1 {
				net.w1[i] -= scale * gw1[i]
			}
			for h := 0; h < cfg.Hidden; h++ {
				net.b1[h] -= scale * gb1[h]
				net.w2[h] -= scale * gw2[h]
			}
			net.b2 -= scale * gb2
		}
	}
	return net, nil
}

// Predict evaluates the network at the (unstandardized) feature vector.
func (n *NN) Predict(x []float64) float64 {
	out := n.b2
	for h := 0; h < n.hidden; h++ {
		z := n.b1[h]
		base := h * n.inDim
		for f := 0; f < n.inDim; f++ {
			z += n.w1[base+f] * (x[f] - n.xMean[f]) / n.xStd[f]
		}
		if z > 0 {
			out += n.w2[h] * z
		}
	}
	return out*n.yStd + n.yMean
}
