package mlearn

import "encoding/json"

// treeJSON is the serialized form of a Tree node.
type treeJSON struct {
	Leaf      bool      `json:"leaf"`
	Value     float64   `json:"value,omitempty"`
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Left      *treeJSON `json:"left,omitempty"`
	Right     *treeJSON `json:"right,omitempty"`
}

func toJSON(t *Tree) *treeJSON {
	if t == nil {
		return nil
	}
	if t.leaf {
		return &treeJSON{Leaf: true, Value: t.value}
	}
	return &treeJSON{
		Feature:   t.feature,
		Threshold: t.threshold,
		Left:      toJSON(t.left),
		Right:     toJSON(t.right),
	}
}

func fromJSON(j *treeJSON) *Tree {
	if j == nil {
		return nil
	}
	if j.Leaf {
		return &Tree{leaf: true, value: j.Value}
	}
	return &Tree{
		feature:   j.Feature,
		threshold: j.Threshold,
		left:      fromJSON(j.Left),
		right:     fromJSON(j.Right),
	}
}

// MarshalJSON serializes the tree structure.
func (t *Tree) MarshalJSON() ([]byte, error) { return json.Marshal(toJSON(t)) }

// UnmarshalJSON restores a tree serialized by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j treeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*t = *fromJSON(&j)
	return nil
}
