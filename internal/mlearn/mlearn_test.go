package mlearn

import (
	"math"
	"testing"

	"erms/internal/stats"
)

// stepData: y = 10 for x0 <= 5, else 50, with mild noise.
func stepData(n int, seed uint64) ([][]float64, []float64) {
	r := stats.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := r.Float64() * 10
		x[i] = []float64{v, r.Float64()} // second feature is noise
		if v <= 5 {
			y[i] = 10 + r.NormFloat64()*0.2
		} else {
			y[i] = 50 + r.NormFloat64()*0.2
		}
	}
	return x, y
}

func TestTreeLearnsStep(t *testing.T) {
	x, y := stepData(500, 1)
	tr, err := FitTree(x, y, TreeConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{2, 0.5}); math.Abs(got-10) > 2 {
		t.Fatalf("low region = %v", got)
	}
	if got := tr.Predict([]float64{8, 0.5}); math.Abs(got-50) > 2 {
		t.Fatalf("high region = %v", got)
	}
	if tr.Depth() < 1 {
		t.Fatal("tree did not split")
	}
	if tr.String() == "" {
		t.Fatal("empty string")
	}
}

func TestTreeRespectsDepthAndLeafLimits(t *testing.T) {
	x, y := stepData(200, 2)
	tr, err := FitTree(x, y, TreeConfig{MaxDepth: 1, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("depth = %d", tr.Depth())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}, {12}}
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 7
	}
	tr, err := FitTree(x, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatal("constant target should be a single leaf")
	}
	if tr.Predict([]float64{100}) != 7 {
		t.Fatalf("predict = %v", tr.Predict([]float64{100}))
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FitTree([][]float64{{1}, {1, 2}}, []float64{1, 2}, TreeConfig{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestTreeThresholdSubsampling(t *testing.T) {
	x, y := stepData(2000, 3)
	tr, err := FitTree(x, y, TreeConfig{MaxDepth: 3, MaxThresholds: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Quantile subsampling must still find the step at ~5.
	if got := tr.Predict([]float64{1, 0}); math.Abs(got-10) > 3 {
		t.Fatalf("subsampled tree low region = %v", got)
	}
}

func nonlinearData(n int, seed uint64) ([][]float64, []float64) {
	r := stats.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := r.Float64()*4, r.Float64()*4
		x[i] = []float64{a, b}
		y[i] = a*a + 3*b + a*b + r.NormFloat64()*0.1
	}
	return x, y
}

func TestGBDTFitsNonlinear(t *testing.T) {
	x, y := nonlinearData(800, 5)
	g, err := FitGBDT(x, y, GBDTConfig{Trees: 120, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != 120 {
		t.Fatalf("trees = %d", g.NumTrees())
	}
	tx, ty := nonlinearData(300, 6)
	var pred, actual []float64
	for i := range tx {
		pred = append(pred, g.Predict(tx[i]))
		actual = append(actual, ty[i])
	}
	if acc := stats.Accuracy(pred, actual); acc < 0.9 {
		t.Fatalf("GBDT test accuracy = %v", acc)
	}
}

func TestGBDTBeatsSingleTree(t *testing.T) {
	x, y := nonlinearData(1000, 7)
	tx, ty := nonlinearData(300, 8)
	tr, _ := FitTree(x, y, TreeConfig{MaxDepth: 3})
	g, _ := FitGBDT(x, y, GBDTConfig{Trees: 80, Tree: TreeConfig{MaxDepth: 3}})
	var treeSSE, gbdtSSE float64
	for i := range tx {
		d1 := tr.Predict(tx[i]) - ty[i]
		d2 := g.Predict(tx[i]) - ty[i]
		treeSSE += d1 * d1
		gbdtSSE += d2 * d2
	}
	if gbdtSSE >= treeSSE {
		t.Fatalf("boosting did not help: tree %v, gbdt %v", treeSSE, gbdtSSE)
	}
}

func TestGBDTErrors(t *testing.T) {
	if _, err := FitGBDT(nil, nil, GBDTConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestNNFitsLinear(t *testing.T) {
	r := stats.NewRNG(9)
	n := 800
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := r.Float64()*10, r.Float64()*10
		x[i] = []float64{a, b}
		y[i] = 2*a - b + 5
	}
	net, err := FitNN(x, y, NNConfig{Hidden: 16, Epochs: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual []float64
	for i := 0; i < 200; i++ {
		a, b := r.Float64()*10, r.Float64()*10
		pred = append(pred, net.Predict([]float64{a, b}))
		actual = append(actual, 2*a-b+5)
	}
	// Relative error measured on |y| scale to avoid zero-crossing blowups.
	var sse, norm float64
	for i := range pred {
		d := pred[i] - actual[i]
		sse += d * d
		norm += actual[i] * actual[i]
	}
	if sse/norm > 0.01 {
		t.Fatalf("NN relative SSE = %v", sse/norm)
	}
}

func TestNNFitsNonlinear(t *testing.T) {
	x, y := nonlinearData(800, 11)
	net, err := FitNN(x, y, NNConfig{Hidden: 32, Epochs: 200, Seed: 2, LearningRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := nonlinearData(300, 12)
	var pred, actual []float64
	for i := range tx {
		pred = append(pred, net.Predict(tx[i]))
		actual = append(actual, ty[i])
	}
	if acc := stats.Accuracy(pred, actual); acc < 0.85 {
		t.Fatalf("NN test accuracy = %v", acc)
	}
}

func TestNNDeterministicGivenSeed(t *testing.T) {
	x, y := nonlinearData(200, 13)
	a, err := FitNN(x, y, NNConfig{Hidden: 8, Epochs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FitNN(x, y, NNConfig{Hidden: 8, Epochs: 20, Seed: 3})
	probe := []float64{1.5, 2.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("NN training not deterministic for fixed seed")
	}
}

func TestNNErrors(t *testing.T) {
	if _, err := FitNN(nil, nil, NNConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FitNN([][]float64{{1}, {1, 2}}, []float64{1, 2}, NNConfig{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}
