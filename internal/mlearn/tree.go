// Package mlearn provides the from-scratch machine-learning models Erms
// needs: CART regression trees (used to learn the interference-dependent
// cut-off point σ of the piece-wise latency model, §5.2), gradient-boosted
// trees (the XGBoost stand-in of Fig. 10), and a small feed-forward neural
// network (the NN baseline of Fig. 10). Stdlib only.
package mlearn

import (
	"errors"
	"fmt"
	"sort"
)

// TreeConfig bounds regression-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (root is depth 0). Default 4.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf. Default 5.
	MinLeaf int
	// MaxThresholds caps candidate split thresholds per feature (quantile
	// subsampling); 0 means all midpoints.
	MaxThresholds int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	return c
}

// Tree is a fitted CART regression tree.
type Tree struct {
	feature   int
	threshold float64
	left      *Tree
	right     *Tree
	value     float64
	leaf      bool
}

// FitTree grows a regression tree on X (rows of features) and y by greedy
// variance reduction.
func FitTree(x [][]float64, y []float64, cfg TreeConfig) (*Tree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("mlearn: FitTree empty or mismatched input")
	}
	d := len(x[0])
	for _, row := range x {
		if len(row) != d {
			return nil, errors.New("mlearn: FitTree ragged rows")
		}
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	return grow(x, y, idx, cfg, 0), nil
}

func mean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func grow(x [][]float64, y []float64, idx []int, cfg TreeConfig, depth int) *Tree {
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &Tree{leaf: true, value: mean(y, idx)}
	}
	parentSSE := sse(y, idx)
	if parentSSE == 0 {
		return &Tree{leaf: true, value: mean(y, idx)}
	}
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	d := len(x[0])
	for f := 0; f < d; f++ {
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		sort.Float64s(vals)
		var thresholds []float64
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[i-1] {
				thresholds = append(thresholds, (vals[i]+vals[i-1])/2)
			}
		}
		if cfg.MaxThresholds > 0 && len(thresholds) > cfg.MaxThresholds {
			sub := make([]float64, cfg.MaxThresholds)
			for k := range sub {
				sub[k] = thresholds[k*len(thresholds)/cfg.MaxThresholds]
			}
			thresholds = sub
		}
		for _, th := range thresholds {
			var li, ri []int
			for _, i := range idx {
				if x[i][f] <= th {
					li = append(li, i)
				} else {
					ri = append(ri, i)
				}
			}
			if len(li) < cfg.MinLeaf || len(ri) < cfg.MinLeaf {
				continue
			}
			gain := parentSSE - sse(y, li) - sse(y, ri)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, f, th
			}
		}
	}
	if bestFeat < 0 {
		return &Tree{leaf: true, value: mean(y, idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &Tree{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      grow(x, y, li, cfg, depth+1),
		right:     grow(x, y, ri, cfg, depth+1),
	}
}

// Predict evaluates the tree at the feature vector.
func (t *Tree) Predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// Depth returns the tree depth (0 for a single leaf).
func (t *Tree) Depth() int {
	if t.leaf {
		return 0
	}
	l, r := t.left.Depth(), t.right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders a compact description for debugging.
func (t *Tree) String() string {
	if t.leaf {
		return fmt.Sprintf("leaf(%.3g)", t.value)
	}
	return fmt.Sprintf("(x%d<=%.3g ? %s : %s)", t.feature, t.threshold, t.left, t.right)
}

// GBDTConfig configures gradient-boosted regression trees.
type GBDTConfig struct {
	// Trees is the ensemble size. Default 100.
	Trees int
	// LearningRate shrinks each tree's contribution. Default 0.1.
	LearningRate float64
	// Tree bounds the base learners (default depth 3).
	Tree TreeConfig
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Tree.MaxDepth <= 0 {
		c.Tree.MaxDepth = 3
	}
	if c.Tree.MaxThresholds <= 0 {
		// Quantile subsampling keeps boosting fast on large profiles without
		// hurting split quality materially.
		c.Tree.MaxThresholds = 32
	}
	return c
}

// GBDT is a fitted gradient-boosted tree ensemble (squared loss).
type GBDT struct {
	base  float64
	rate  float64
	trees []*Tree
}

// FitGBDT fits the ensemble by steepest-descent boosting on squared loss:
// each tree regresses the current residuals.
func FitGBDT(x [][]float64, y []float64, cfg GBDTConfig) (*GBDT, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("mlearn: FitGBDT empty or mismatched input")
	}
	cfg = cfg.withDefaults()
	base := 0.0
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))
	model := &GBDT{base: base, rate: cfg.LearningRate}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = base
	}
	resid := make([]float64, len(y))
	for k := 0; k < cfg.Trees; k++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
		}
		t, err := FitTree(x, resid, cfg.Tree)
		if err != nil {
			return nil, err
		}
		model.trees = append(model.trees, t)
		for i := range pred {
			pred[i] += cfg.LearningRate * t.Predict(x[i])
		}
	}
	return model, nil
}

// Predict evaluates the ensemble.
func (g *GBDT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.rate * t.Predict(x)
	}
	return out
}

// NumTrees returns the ensemble size.
func (g *GBDT) NumTrees() int { return len(g.trees) }
