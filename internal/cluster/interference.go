package cluster

// InterferenceModel maps host utilization to the factor by which container
// service times are inflated. This is how resource interference reaches the
// request path in the simulator: higher host CPU and memory pressure slow
// every request processed on that host, which both moves the latency knee
// earlier (the container saturates at a lower arrival rate) and steepens the
// post-knee slope — the two effects §2.2 observes in Fig. 3.
//
// The memory term is intentionally super-linear past MemKnee: the paper
// attributes memory interference to compaction triggered at high utilization
// (§5.2), which is negligible on cold hosts and severe on hot ones.
type InterferenceModel struct {
	// CPULinear scales the linear CPU-utilization penalty.
	CPULinear float64
	// CPUQuad scales the quadratic CPU-utilization penalty.
	CPUQuad float64
	// MemLinear scales the linear memory-utilization penalty.
	MemLinear float64
	// MemKnee is the memory utilization past which compaction effects begin.
	MemKnee float64
	// MemCompaction scales the quadratic penalty past MemKnee.
	MemCompaction float64
}

// DefaultInterference is calibrated so the Fig. 3 host conditions reproduce
// the paper's qualitative ordering: a 47%-CPU host inflates service times
// noticeably more than a lightly loaded one, and a 62%-memory host suffers
// compaction-driven slowdown comparable to heavy CPU pressure.
var DefaultInterference = InterferenceModel{
	CPULinear:     0.35,
	CPUQuad:       1.4,
	MemLinear:     0.15,
	MemKnee:       0.45,
	MemCompaction: 6.0,
}

// Inflation returns the multiplicative service-time factor (>= 1) for the
// given host CPU and memory utilizations in [0, 1].
func (m InterferenceModel) Inflation(cpuUtil, memUtil float64) float64 {
	if cpuUtil < 0 {
		cpuUtil = 0
	}
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	if memUtil < 0 {
		memUtil = 0
	}
	if memUtil > 1 {
		memUtil = 1
	}
	f := 1 + m.CPULinear*cpuUtil + m.CPUQuad*cpuUtil*cpuUtil + m.MemLinear*memUtil
	if memUtil > m.MemKnee {
		d := memUtil - m.MemKnee
		f += m.MemCompaction * d * d
	}
	return f
}

// HostInflation returns the inflation factor for the host's current
// utilization.
func (m InterferenceModel) HostInflation(h *Host) float64 {
	return m.Inflation(h.CPUUtil(), h.MemUtil())
}
