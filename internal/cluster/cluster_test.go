package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"erms/internal/workload"
)

func TestNewPaperCluster(t *testing.T) {
	cl := NewPaperCluster()
	if cl.NumHosts() != 20 {
		t.Fatalf("hosts = %d", cl.NumHosts())
	}
	if cl.TotalCores() != 640 {
		t.Fatalf("total cores = %v", cl.TotalCores())
	}
	if cl.TotalMemMB() != 20*64*1024 {
		t.Fatalf("total mem = %v", cl.TotalMemMB())
	}
}

func TestPlaceAndRemove(t *testing.T) {
	cl := New(2, PaperHost)
	spec := PaperContainer("ms-a")
	c, err := cl.Place(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Host.ID != 0 || c.Spec.Microservice != "ms-a" {
		t.Fatalf("container = %+v", c)
	}
	if cl.CountFor("ms-a") != 1 || len(cl.ContainersFor("ms-a")) != 1 {
		t.Fatal("container not tracked")
	}
	if err := cl.Remove(c.ID); err != nil {
		t.Fatal(err)
	}
	if cl.CountFor("ms-a") != 0 {
		t.Fatal("container not removed")
	}
	if err := cl.Remove(c.ID); err == nil {
		t.Fatal("double remove should error")
	}
}

func TestPlaceErrors(t *testing.T) {
	cl := New(1, HostSpec{Cores: 1, MemGB: 4})
	if _, err := cl.Place(ContainerSpec{}, 0); err == nil {
		t.Fatal("invalid spec should error")
	}
	if _, err := cl.Place(PaperContainer("x"), 9); err == nil {
		t.Fatal("bad host should error")
	}
	// Fill the host to capacity: 1 core / 0.1 = 10 containers.
	for i := 0; i < 10; i++ {
		if _, err := cl.Place(PaperContainer("x"), 0); err != nil {
			t.Fatalf("placement %d failed: %v", i, err)
		}
	}
	if _, err := cl.Place(PaperContainer("x"), 0); err == nil {
		t.Fatal("over-capacity placement should error")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cl := New(1, HostSpec{Cores: 10, MemGB: 10})
	h := cl.Host(0)
	if h.CPUUtil() != 0 || h.MemUtil() != 0 {
		t.Fatal("fresh host should be idle")
	}
	c, err := cl.Place(ContainerSpec{Microservice: "a", CPU: 2, MemMB: 1024, Threads: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.CPUUtil(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("cpu util = %v", got)
	}
	if got := h.MemUtil(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("mem util = %v", got)
	}
	c.SetCPUUsage(5)
	if got := h.CPUUtil(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cpu util after usage update = %v", got)
	}
	c.SetCPUUsage(-3)
	if c.CPUUsage() != 0 {
		t.Fatal("negative usage should clamp to 0")
	}
}

func TestBackgroundInterference(t *testing.T) {
	cl := New(2, HostSpec{Cores: 10, MemGB: 10})
	if err := cl.SetBackground(0, workload.Interference{CPU: 0.4, Mem: 0.6}); err != nil {
		t.Fatal(err)
	}
	if cl.Host(0).CPUUtil() != 0.4 || cl.Host(0).MemUtil() != 0.6 {
		t.Fatal("background not reflected in utilization")
	}
	if math.Abs(cl.MeanCPUUtil()-0.2) > 1e-12 {
		t.Fatalf("mean cpu = %v", cl.MeanCPUUtil())
	}
	if err := cl.SetBackground(7, workload.Interference{}); err == nil {
		t.Fatal("bad host should error")
	}
	// Background reduces fit capacity.
	h := cl.Host(0)
	if got := h.CPUFree(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("cpu free = %v", got)
	}
}

func TestUtilizationCapped(t *testing.T) {
	cl := New(1, HostSpec{Cores: 1, MemGB: 1})
	cl.SetBackground(0, workload.Interference{CPU: 0.9, Mem: 0.9})
	c, err := cl.Place(ContainerSpec{Microservice: "a", CPU: 0.05, MemMB: 50, Threads: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCPUUsage(100)
	if cl.Host(0).CPUUtil() > 1 {
		t.Fatal("utilization must cap at 1")
	}
}

func TestDominantShare(t *testing.T) {
	cl := New(1, HostSpec{Cores: 10, MemGB: 1}) // 10 cores, 1024 MB
	cpuHeavy := ContainerSpec{Microservice: "a", CPU: 1, MemMB: 1, Threads: 1}
	if got := cl.DominantShare(cpuHeavy); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cpu-dominant share = %v", got)
	}
	memHeavy := ContainerSpec{Microservice: "b", CPU: 0.01, MemMB: 512, Threads: 1}
	if got := cl.DominantShare(memHeavy); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mem-dominant share = %v", got)
	}
}

func TestImbalance(t *testing.T) {
	cl := New(2, HostSpec{Cores: 10, MemGB: 10})
	if cl.Imbalance() != 0 {
		t.Fatal("balanced cluster should have zero imbalance")
	}
	cl.SetBackground(0, workload.Interference{CPU: 0.8})
	if cl.Imbalance() <= 0 {
		t.Fatal("imbalanced cluster should have positive imbalance")
	}
}

func TestReset(t *testing.T) {
	cl := New(2, PaperHost)
	cl.SetBackground(1, workload.Interference{CPU: 0.3})
	cl.Place(PaperContainer("a"), 0)
	cl.Place(PaperContainer("b"), 1)
	cl.Reset()
	if len(cl.Containers()) != 0 {
		t.Fatal("reset left containers")
	}
	if cl.Host(1).Background.CPU != 0.3 {
		t.Fatal("reset should keep background levels")
	}
	// Cluster remains usable.
	if _, err := cl.Place(PaperContainer("c"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestContainersOrdering(t *testing.T) {
	cl := New(3, PaperHost)
	for i := 0; i < 9; i++ {
		if _, err := cl.Place(PaperContainer("m"), i%3); err != nil {
			t.Fatal(err)
		}
	}
	prev := -1
	for _, c := range cl.Containers() {
		if c.ID <= prev {
			t.Fatal("containers not ordered by ID")
		}
		prev = c.ID
	}
	prev = -1
	for _, c := range cl.Host(0).Containers() {
		if c.ID <= prev {
			t.Fatal("host containers not ordered by ID")
		}
		prev = c.ID
	}
}

func TestInterferenceInflationMonotone(t *testing.T) {
	m := DefaultInterference
	if got := m.Inflation(0, 0); got != 1 {
		t.Fatalf("idle inflation = %v, want 1", got)
	}
	f := func(a, b uint8) bool {
		u1 := float64(a%101) / 100
		u2 := float64(b%101) / 100
		lo, hi := math.Min(u1, u2), math.Max(u1, u2)
		// Monotone in each argument separately.
		return m.Inflation(hi, 0.3) >= m.Inflation(lo, 0.3)-1e-12 &&
			m.Inflation(0.3, hi) >= m.Inflation(0.3, lo)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceCompactionKicksIn(t *testing.T) {
	m := DefaultInterference
	// Slope of inflation w.r.t. memory is much steeper past the knee.
	below := m.Inflation(0.2, 0.40) - m.Inflation(0.2, 0.35)
	above := m.Inflation(0.2, 0.90) - m.Inflation(0.2, 0.85)
	if above < 3*below {
		t.Fatalf("compaction effect too weak: below=%v above=%v", below, above)
	}
}

func TestInterferenceClampsInputs(t *testing.T) {
	m := DefaultInterference
	if m.Inflation(-1, -1) != 1 {
		t.Fatal("negative inputs should clamp to idle")
	}
	if m.Inflation(2, 2) != m.Inflation(1, 1) {
		t.Fatal("inputs above 1 should clamp")
	}
}

func TestHostInflationMatchesUtil(t *testing.T) {
	cl := New(1, HostSpec{Cores: 10, MemGB: 10})
	cl.SetBackground(0, workload.Interference{CPU: 0.47, Mem: 0.35})
	h := cl.Host(0)
	m := DefaultInterference
	if got, want := m.HostInflation(h), m.Inflation(0.47, 0.35); math.Abs(got-want) > 1e-12 {
		t.Fatalf("host inflation %v != %v", got, want)
	}
}

func TestRemoveRestoresUtilization(t *testing.T) {
	cl := New(2, PaperHost)
	cl.SetBackground(0, workload.Interference{CPU: 0.2, Mem: 0.1})
	h := cl.Host(0)
	cpuFree0, memFree0 := h.CPUFree(), h.MemFreeMB()
	cpuUtil0, memUtil0 := h.CPUUtil(), h.MemUtil()

	c1, err := cl.Place(PaperContainer("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.Place(PaperContainer("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Measured usage above the request must not leak into free-capacity
	// accounting after removal.
	c1.SetCPUUsage(2.5)
	if h.CPUFree() >= cpuFree0 || h.MemFreeMB() >= memFree0 {
		t.Fatal("placement did not consume capacity")
	}

	if err := cl.Remove(c1.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(c2.ID); err != nil {
		t.Fatal(err)
	}
	if got := h.CPUFree(); math.Abs(got-cpuFree0) > 1e-9 {
		t.Fatalf("CPUFree after remove = %v, want %v", got, cpuFree0)
	}
	if got := h.MemFreeMB(); math.Abs(got-memFree0) > 1e-9 {
		t.Fatalf("MemFreeMB after remove = %v, want %v", got, memFree0)
	}
	if got := h.CPUUtil(); math.Abs(got-cpuUtil0) > 1e-9 {
		t.Fatalf("CPUUtil after remove = %v, want %v", got, cpuUtil0)
	}
	if got := h.MemUtil(); math.Abs(got-memUtil0) > 1e-9 {
		t.Fatalf("MemUtil after remove = %v, want %v", got, memUtil0)
	}
	if cl.NumContainers() != 0 {
		t.Fatalf("containers left: %d", cl.NumContainers())
	}
}

func TestDownAndCordonedHostsRejectPlacement(t *testing.T) {
	cl := New(2, PaperHost)
	h := cl.Host(0)
	spec := PaperContainer("a")
	if !h.Fits(spec) {
		t.Fatal("healthy empty host should fit")
	}
	h.SetCordoned(true)
	if h.Fits(spec) || h.Schedulable() {
		t.Fatal("cordoned host should not fit")
	}
	if _, err := cl.Place(spec, 0); err == nil {
		t.Fatal("placement on cordoned host accepted")
	}
	h.SetCordoned(false)
	h.SetDown(true)
	if h.Fits(spec) || h.Schedulable() {
		t.Fatal("down host should not fit")
	}
	if _, err := cl.Place(spec, 0); err == nil {
		t.Fatal("placement on down host accepted")
	}
	h.SetDown(false)
	if _, err := cl.Place(spec, 0); err != nil {
		t.Fatalf("recovered host rejects placement: %v", err)
	}
}

func TestDownHostsExcludedFromMeans(t *testing.T) {
	cl := New(2, PaperHost)
	cl.SetBackground(0, workload.Interference{CPU: 0.8, Mem: 0.8})
	cl.SetBackground(1, workload.Interference{CPU: 0.2, Mem: 0.2})
	cl.Host(0).SetDown(true)
	if got := cl.MeanCPUUtil(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("mean CPU with host 0 down = %v, want 0.2", got)
	}
	if got := cl.UpHosts(); got != 1 {
		t.Fatalf("up hosts = %d", got)
	}
	cl.Host(1).SetDown(true)
	if got := cl.MeanCPUUtil(); got != 0 {
		t.Fatalf("mean CPU with all hosts down = %v", got)
	}
}
