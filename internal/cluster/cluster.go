// Package cluster models the physical substrate: hosts with CPU and memory
// capacity, microservice containers placed on them, utilization accounting,
// and the resource-interference model that inflates container service times
// when hosts run hot. It is the stand-in for the paper's 20-host testbed.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"erms/internal/workload"
)

// HostSpec describes one physical host.
type HostSpec struct {
	Cores int     // CPU cores
	MemGB float64 // memory in GiB
}

// PaperHost matches the evaluation cluster: two-socket hosts with 32 cores
// and 64 GB RAM (§6.1).
var PaperHost = HostSpec{Cores: 32, MemGB: 64}

// ContainerSpec is the resource configuration of one microservice container.
type ContainerSpec struct {
	Microservice string
	CPU          float64 // cores requested, e.g. 0.1 (§6.1)
	MemMB        float64 // memory requested in MiB, e.g. 200
	Threads      int     // worker threads processing requests in parallel
}

// PaperContainer matches the evaluation configuration: 0.1 core and 200 MB
// per container (§6.1), with a small worker pool.
func PaperContainer(microservice string) ContainerSpec {
	return ContainerSpec{Microservice: microservice, CPU: 0.1, MemMB: 200, Threads: 4}
}

// Validate checks the container spec.
func (c ContainerSpec) Validate() error {
	if c.Microservice == "" {
		return errors.New("cluster: container with empty microservice")
	}
	if c.CPU <= 0 || c.MemMB <= 0 {
		return fmt.Errorf("cluster: container %s with non-positive resources", c.Microservice)
	}
	if c.Threads <= 0 {
		return fmt.Errorf("cluster: container %s with no worker threads", c.Microservice)
	}
	return nil
}

// Container is a placed instance of a microservice.
type Container struct {
	ID   int
	Spec ContainerSpec
	Host *Host

	// cpuUsage is the CPU actually consumed (cores); defaults to the request
	// and may be overwritten by the simulator with measured usage.
	cpuUsage float64
}

// SetCPUUsage records measured CPU consumption in cores (clamped at 0).
func (c *Container) SetCPUUsage(cores float64) {
	if cores < 0 {
		cores = 0
	}
	c.cpuUsage = cores
}

// CPUUsage returns the CPU consumption used for utilization accounting.
func (c *Container) CPUUsage() float64 { return c.cpuUsage }

// Host is one physical machine.
type Host struct {
	ID         int
	Spec       HostSpec
	Background workload.Interference // colocated batch-job load (iBench substitute)

	containers map[int]*Container
	// ordered mirrors containers sorted by ID. Utilization sums iterate it
	// instead of the map: float addition is order-sensitive at the ulp, and
	// map iteration order would make CPUUtil nondeterministic run to run.
	ordered  []*Container
	down     bool // failed: hosts nothing, schedules nothing
	cordoned bool // administratively unschedulable; existing containers keep running

	// extCPUCores / extMemMB account for load on this host that is simulated
	// elsewhere: when the simulator splits a run into sharing-group
	// partitions, each partition clones the cluster with only its own
	// containers placed, and the other partitions' containers show up here as
	// external usage exchanged at window boundaries. Zero outside partitioned
	// runs.
	extCPUCores float64
	extMemMB    float64
}

// SetExternalUsage records resource consumption by containers simulated in
// other partitions of a partitioned run. It feeds CPUUtil and MemUtil (and
// through them the interference model) without placing the containers here.
func (h *Host) SetExternalUsage(cpuCores, memMB float64) {
	if cpuCores < 0 {
		cpuCores = 0
	}
	if memMB < 0 {
		memMB = 0
	}
	h.extCPUCores = cpuCores
	h.extMemMB = memMB
}

// ExternalUsage returns the external CPU (cores) and memory (MiB) recorded by
// SetExternalUsage.
func (h *Host) ExternalUsage() (cpuCores, memMB float64) {
	return h.extCPUCores, h.extMemMB
}

// Down reports whether the host has failed.
func (h *Host) Down() bool { return h.down }

// SetDown marks the host failed (true) or recovered (false). Failing a host
// does not remove its containers — the orchestrator owns that bookkeeping
// (kube.Orchestrator.FailNode evicts and emits watch events).
func (h *Host) SetDown(down bool) { h.down = down }

// Cordoned reports whether the host is administratively unschedulable.
func (h *Host) Cordoned() bool { return h.cordoned }

// SetCordoned marks the host unschedulable for new placements. Running
// containers are unaffected (drain moves them explicitly).
func (h *Host) SetCordoned(cordoned bool) { h.cordoned = cordoned }

// Schedulable reports whether new containers may be placed on the host.
func (h *Host) Schedulable() bool { return !h.down && !h.cordoned }

// Containers returns the containers placed on the host, ordered by ID.
func (h *Host) Containers() []*Container {
	out := make([]*Container, len(h.ordered))
	copy(out, h.ordered)
	return out
}

// insertOrdered adds c to the ID-sorted slice. IDs are assigned monotonically
// so the common case is a plain append; the search covers re-placement after
// removals.
func (h *Host) insertOrdered(c *Container) {
	i := sort.Search(len(h.ordered), func(i int) bool { return h.ordered[i].ID >= c.ID })
	h.ordered = append(h.ordered, nil)
	copy(h.ordered[i+1:], h.ordered[i:])
	h.ordered[i] = c
}

func (h *Host) removeOrdered(id int) {
	i := sort.Search(len(h.ordered), func(i int) bool { return h.ordered[i].ID >= id })
	if i < len(h.ordered) && h.ordered[i].ID == id {
		h.ordered = append(h.ordered[:i], h.ordered[i+1:]...)
	}
}

// CPUUtil returns the host CPU utilization in [0, 1]: background plus the sum
// of container CPU usage over capacity, capped at 1.
func (h *Host) CPUUtil() float64 {
	u := h.Background.CPU + h.extCPUCores/float64(h.Spec.Cores)
	for _, c := range h.ordered {
		u += c.cpuUsage / float64(h.Spec.Cores)
	}
	if u > 1 {
		u = 1
	}
	return u
}

// MemUtil returns the host memory utilization in [0, 1]: background plus
// container memory requests over capacity, capped at 1.
func (h *Host) MemUtil() float64 {
	u := h.Background.Mem + h.extMemMB/(h.Spec.MemGB*1024)
	for _, c := range h.ordered {
		u += c.Spec.MemMB / (h.Spec.MemGB * 1024)
	}
	if u > 1 {
		u = 1
	}
	return u
}

// CPUFree returns uncommitted CPU cores (requests, not usage).
func (h *Host) CPUFree() float64 {
	free := float64(h.Spec.Cores) * (1 - h.Background.CPU)
	for _, c := range h.ordered {
		free -= c.Spec.CPU
	}
	return free
}

// MemFreeMB returns uncommitted memory in MiB.
func (h *Host) MemFreeMB() float64 {
	free := h.Spec.MemGB * 1024 * (1 - h.Background.Mem)
	for _, c := range h.ordered {
		free -= c.Spec.MemMB
	}
	return free
}

// Fits reports whether the host can accept the given container spec: it must
// be schedulable (not down, not cordoned) and have free capacity. Every
// scheduler routes through Fits, so down and cordoned hosts are invisible to
// placement without per-policy changes.
func (h *Host) Fits(spec ContainerSpec) bool {
	return h.Schedulable() && h.CPUFree() >= spec.CPU && h.MemFreeMB() >= spec.MemMB
}

// Cluster is a set of hosts with container placement state.
type Cluster struct {
	hosts      []*Host
	containers map[int]*Container
	nextCID    int
}

// New creates a cluster of n identical hosts.
func New(n int, spec HostSpec) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one host")
	}
	cl := &Cluster{containers: make(map[int]*Container)}
	for i := 0; i < n; i++ {
		cl.hosts = append(cl.hosts, &Host{ID: i, Spec: spec, containers: make(map[int]*Container)})
	}
	return cl
}

// NewPaperCluster builds the evaluation cluster: 20 hosts of 32 cores / 64 GB.
func NewPaperCluster() *Cluster { return New(20, PaperHost) }

// Hosts returns the hosts in ID order.
func (cl *Cluster) Hosts() []*Host { return cl.hosts }

// Host returns the host with the given ID, or nil.
func (cl *Cluster) Host(id int) *Host {
	if id < 0 || id >= len(cl.hosts) {
		return nil
	}
	return cl.hosts[id]
}

// NumHosts returns the host count.
func (cl *Cluster) NumHosts() int { return len(cl.hosts) }

// TotalCores returns the cluster CPU capacity in cores.
func (cl *Cluster) TotalCores() float64 {
	var t float64
	for _, h := range cl.hosts {
		t += float64(h.Spec.Cores)
	}
	return t
}

// TotalMemMB returns the cluster memory capacity in MiB.
func (cl *Cluster) TotalMemMB() float64 {
	var t float64
	for _, h := range cl.hosts {
		t += h.Spec.MemGB * 1024
	}
	return t
}

// DominantShare computes R_i from Eq. 3: the dominant fraction of cluster
// capacity one container of the given spec consumes.
func (cl *Cluster) DominantShare(spec ContainerSpec) float64 {
	rc := spec.CPU / cl.TotalCores()
	rm := spec.MemMB / cl.TotalMemMB()
	if rc > rm {
		return rc
	}
	return rm
}

// Place creates a container on the given host. It returns an error when the
// host lacks capacity.
func (cl *Cluster) Place(spec ContainerSpec, hostID int) (*Container, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h := cl.Host(hostID)
	if h == nil {
		return nil, fmt.Errorf("cluster: no host %d", hostID)
	}
	if !h.Schedulable() {
		return nil, fmt.Errorf("cluster: host %d is not schedulable (down=%v cordoned=%v)", hostID, h.down, h.cordoned)
	}
	if !h.Fits(spec) {
		return nil, fmt.Errorf("cluster: host %d cannot fit container %s (cpu free %.2f, mem free %.0fMB)",
			hostID, spec.Microservice, h.CPUFree(), h.MemFreeMB())
	}
	c := &Container{ID: cl.nextCID, Spec: spec, Host: h, cpuUsage: spec.CPU}
	cl.nextCID++
	h.containers[c.ID] = c
	h.insertOrdered(c)
	cl.containers[c.ID] = c
	return c, nil
}

// Remove deletes a container by ID.
func (cl *Cluster) Remove(containerID int) error {
	c, ok := cl.containers[containerID]
	if !ok {
		return fmt.Errorf("cluster: no container %d", containerID)
	}
	delete(c.Host.containers, containerID)
	c.Host.removeOrdered(containerID)
	delete(cl.containers, containerID)
	return nil
}

// Containers returns all containers ordered by ID.
func (cl *Cluster) Containers() []*Container {
	out := make([]*Container, 0, len(cl.containers))
	for _, c := range cl.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumContainers returns the number of placed containers.
func (cl *Cluster) NumContainers() int { return len(cl.containers) }

// ContainersFor returns the containers of one microservice, ordered by ID.
func (cl *Cluster) ContainersFor(microservice string) []*Container {
	var out []*Container
	for _, c := range cl.containers {
		if c.Spec.Microservice == microservice {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountFor returns the number of containers deployed for a microservice.
func (cl *Cluster) CountFor(microservice string) int {
	n := 0
	for _, c := range cl.containers {
		if c.Spec.Microservice == microservice {
			n++
		}
	}
	return n
}

// UpHosts returns the number of hosts that have not failed (cordoned hosts
// count: they still run containers).
func (cl *Cluster) UpHosts() int {
	n := 0
	for _, h := range cl.hosts {
		if !h.down {
			n++
		}
	}
	return n
}

// MeanCPUUtil returns the average CPU utilization over live hosts (§5.3.1
// feeds this into the profiling model). Failed hosts run nothing and are
// excluded so a partial outage does not read as a cold cluster.
func (cl *Cluster) MeanCPUUtil() float64 {
	var s float64
	n := 0
	for _, h := range cl.hosts {
		if h.down {
			continue
		}
		s += h.CPUUtil()
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanMemUtil returns the average memory utilization over live hosts.
func (cl *Cluster) MeanMemUtil() float64 {
	var s float64
	n := 0
	for _, h := range cl.hosts {
		if h.down {
			continue
		}
		s += h.MemUtil()
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Imbalance returns the resource-unbalance objective of §5.4: the sum over
// hosts of squared deviation between host utilization and the cluster-wide
// mean, for CPU and memory.
func (cl *Cluster) Imbalance() float64 {
	mc, mm := cl.MeanCPUUtil(), cl.MeanMemUtil()
	var s float64
	for _, h := range cl.hosts {
		if h.down {
			continue
		}
		dc := h.CPUUtil() - mc
		dm := h.MemUtil() - mm
		s += dc*dc + dm*dm
	}
	return s
}

// SetBackground sets the colocated batch-job interference on a host.
func (cl *Cluster) SetBackground(hostID int, itf workload.Interference) error {
	h := cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("cluster: no host %d", hostID)
	}
	h.Background = itf.Clamp(1)
	return nil
}

// Reset removes all containers, keeping hosts and background levels.
func (cl *Cluster) Reset() {
	for _, h := range cl.hosts {
		h.containers = make(map[int]*Container)
	}
	cl.containers = make(map[int]*Container)
}
