package drift

import (
	"math"

	"erms/internal/profiling"
	"erms/internal/stats"
)

// minSlope mirrors profiling.Interval's slope floor so the planner's Eq. 5
// closed forms stay well-defined against a refitted flat segment.
const minSlope = 1e-9

// SegmentModel is a live-refitted piece-wise linear latency model: the
// stats.SegmentedFit family the offline profiler uses, but fitted from one
// interference regime (a drifted streak's windows), so it is deliberately
// utilization-independent — Knee and Params ignore (C, M). If the
// interference landscape later shifts too, the detector simply re-fits
// again; the model never pretends to a (C, M) response it was not trained
// on.
//
// A SegmentModel is immutable after construction. Swapping one into the
// planner's model map is the template cache's invalidation event: the
// parameter probe hash no longer matches, the stale template recompiles,
// everything else stays hot.
type SegmentModel struct {
	Microservice string
	Fit          stats.SegmentedFit
	knee         float64
}

var _ profiling.Model = (*SegmentModel)(nil)

// NewSegmentModel wraps a segmented fit as a planner-consumable model.
// maxWorkload is the largest workload observed during the fit; a fit that
// found no interior knee (Knee=+Inf) gets its knee pinned to twice that, the
// same "knee beyond the observed range" convention profiling.Fit uses.
func NewSegmentModel(ms string, fit stats.SegmentedFit, maxWorkload float64) *SegmentModel {
	knee := fit.Knee
	if math.IsInf(knee, 1) || knee <= 0 {
		knee = 2 * maxWorkload
		if knee <= 0 {
			knee = 1
		}
	}
	return &SegmentModel{Microservice: ms, Fit: fit, knee: knee}
}

// Knee returns the refitted cut-off, independent of interference.
func (m *SegmentModel) Knee(cpuUtil, memUtil float64) float64 { return m.knee }

// Params returns the selected segment's slope and intercept. Slopes are
// floored at minSlope so the planner's closed forms stay well-conditioned.
// The low intercept is the attainable latency floor and is floored at 0; the
// high intercept is left as fitted — a steeper post-knee segment extrapolates
// to a negative intercept by construction (continuity at the knee), the
// planner's Eq. 5 slack term only grows from it, and the domain cap keeps
// per-container workloads where the line is positive and valid.
func (m *SegmentModel) Params(high bool, cpuUtil, memUtil float64) (float64, float64) {
	f := m.Fit.Low
	if high {
		f = m.Fit.High
	}
	a, b := f.Slope, f.Intercept
	if a < minSlope {
		a = minSlope
	}
	if !high && b < 0 {
		b = 0
	}
	return a, b
}

// Predict evaluates the piece-wise linearization.
func (m *SegmentModel) Predict(workload, cpuUtil, memUtil float64) float64 {
	a, b := m.Params(workload > m.knee, cpuUtil, memUtil)
	return a*workload + b
}

// ScaledModel is the incremental recalibration: the wrapped model with its
// service time rescaled by Ratio. The transform follows from the physical
// model the paper's curves linearize — a service time S' = r·S shifts the
// idle tail floor to r·b, halves... more precisely divides per-container
// capacity (and with it the knee) by r, and steepens each secant slope by
// r² (r from the latency rise, r again from the compressed workload axis):
//
//	Knee'  = Knee / r
//	slope' = r² · slope
//	b'     = r · b
//
// Ratio > 1 models a slowdown (dependency upgrade doubled the base
// latency); Ratio < 1 a speedup. ScaledModels compose: if one step
// under-corrects, the next drifted streak wraps again, and the estimates
// multiply toward the true shift.
type ScaledModel struct {
	Base  profiling.Model
	Ratio float64
}

var _ profiling.Model = (*ScaledModel)(nil)

// NewScaledModel wraps base with a service-time ratio (must be positive).
func NewScaledModel(base profiling.Model, ratio float64) *ScaledModel {
	// Collapse nested recalibrations so repeated drift episodes don't grow
	// an unbounded wrapper chain (and so Predict stays one indirection).
	if sm, ok := base.(*ScaledModel); ok {
		return &ScaledModel{Base: sm.Base, Ratio: sm.Ratio * ratio}
	}
	return &ScaledModel{Base: base, Ratio: ratio}
}

// Knee returns the capacity-compressed cut-off.
func (m *ScaledModel) Knee(cpuUtil, memUtil float64) float64 {
	k := m.Base.Knee(cpuUtil, memUtil) / m.Ratio
	if !(k > minSlope) {
		k = minSlope
	}
	return k
}

// Params returns the rescaled secant of the chosen interval.
func (m *ScaledModel) Params(high bool, cpuUtil, memUtil float64) (float64, float64) {
	a, b := m.Base.Params(high, cpuUtil, memUtil)
	return a * m.Ratio * m.Ratio, b * m.Ratio
}

// Predict evaluates the rescaled piece-wise model.
func (m *ScaledModel) Predict(workload, cpuUtil, memUtil float64) float64 {
	a, b := m.Params(workload > m.Knee(cpuUtil, memUtil), cpuUtil, memUtil)
	return a*workload + b
}
