// Package drift closes Erms' online profiling loop (ROADMAP item 4). The
// offline profiler (§5.2) fits piece-wise linear latency models once and the
// planner treats them as frozen, so any mid-run shift in a microservice's
// service time — a dependency upgrade, a noisy neighbour, a kernel change —
// silently invalidates Eq. 1 and the planner keeps allocating for a world
// that no longer exists.
//
// The Detector is a streaming per-microservice comparator: each
// reconciliation window it takes the live profiling samples the simulator's
// tracing substrate produced (the same (L, γ, C, M) tuples offline profiling
// consumes) and measures how far the observed tail latency sits from the
// frozen model's prediction at the observed workload and interference. When
// the deviation exceeds a configured threshold for N consecutive windows
// (hysteresis — a single noisy window never triggers), the detector re-fits
// a model from the drifted windows' own samples and returns it as a Swap.
//
// Re-fitting is two-tiered:
//
//   - when the drifted streak spans enough workload diversity, a full
//     piece-wise linear re-fit via stats.FitSegmented — the same model family
//     the offline profiler uses (the internal/mlearn knee trees stay
//     untouched: a live streak holds one interference regime, so there is
//     nothing for a (C, M) → σ tree to learn);
//   - otherwise an incremental recalibration: the observed/predicted latency
//     ratio, taken at a conservative quantile so queueing inflation does not
//     masquerade as service-time drift, rescales the frozen model
//     (ScaledModel). Recalibrations compose — if the first step
//     under-corrects, the still-drifting windows trigger another — so the
//     model walks to the new regime in bounded, clamped steps.
//
// Swapped models are fresh immutable values; handing one to the planner is a
// cheap, correct invalidation event under the template cache's
// parameter-hash/pointer-identity contract (scaling.Template.ParamsMatch):
// the stale template misses, recompiles against the new model, and every
// other service's template stays hot.
//
// Everything is deterministic: microservices are visited in sorted order,
// scores are pure functions of the window's samples, and no clocks or RNGs
// are consulted — a drift-enabled run is byte-identical at any worker count.
package drift

import (
	"math"
	"sort"

	"erms/internal/profiling"
	"erms/internal/stats"
)

// Config tunes the detector. The zero value is usable: every field has a
// documented default applied by NewDetector.
type Config struct {
	// Threshold is the relative deviation of observed from predicted tail
	// latency that counts as a drifted window: a window is flagged when the
	// median observed/predicted ratio exceeds 1+Threshold (or falls below
	// 1/(1+Threshold) with Downward). Default 0.75 — the paper's secant
	// linearizations over-estimate by design, so genuine drift shows up as
	// observations well above prediction, not modest wobble.
	Threshold float64
	// Consecutive is the hysteresis depth: a microservice must stay over
	// threshold for this many consecutive evaluated windows before a re-fit
	// fires. Windows with no signal (observability gaps, too few samples)
	// neither extend nor reset the streak. Default 2.
	Consecutive int
	// MinSamples is the minimum number of live samples a window must carry
	// for a microservice to be scored at all. Default 1.
	MinSamples int
	// MaxRatio clamps one recalibration step to [1/MaxRatio, MaxRatio].
	// Under-correction is safe — the next still-drifted streak compounds
	// another step — while an unclamped ratio taken during a queueing storm
	// could demand absurd allocations. Default 4.
	MaxRatio float64
	// MinRefitSamples and MinDistinct gate the full segmented re-fit: the
	// pooled streak must hold at least MinRefitSamples samples spanning at
	// least MinDistinct distinct workloads (stats.FitSegmented is singular
	// below that). Streaks failing the gate fall back to recalibration.
	// Defaults 8 and 4.
	MinRefitSamples int
	MinDistinct     int
	// Downward also treats observed latency far *below* prediction as drift
	// (a dependency got faster; the model over-allocates). Off by default:
	// the analytic/fitted models deliberately over-estimate, so downward
	// deviation is the expected safe-side bias, not drift.
	Downward bool
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 0.75
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 1
	}
	if c.MaxRatio <= 1 {
		c.MaxRatio = 4
	}
	if c.MinRefitSamples <= 0 {
		c.MinRefitSamples = 8
	}
	if c.MinDistinct < 2 {
		c.MinDistinct = 4
	}
	return c
}

// Swap is one model replacement the detector decided on: hand Model to the
// planner under Microservice's key and the drift is absorbed.
type Swap struct {
	Microservice string
	Model        profiling.Model
	// Score is the drift score of the window that triggered the swap
	// (deviation factor minus one: 1.5 means observed 2.5× predicted).
	Score float64
	// Segmented marks a full stats.FitSegmented re-fit; false is an
	// incremental ScaledModel recalibration.
	Segmented bool
	// Ratio is the applied service-time recalibration (1 for segmented fits).
	Ratio float64
}

// Stats are the detector's cumulative counters, exported under erms.self.*.
type Stats struct {
	// Windows counts ObserveWindow calls.
	Windows int
	// Detections counts (microservice, window) pairs flagged over threshold.
	Detections int
	// Refits counts full segmented re-fits; Fallbacks counts ScaledModel
	// recalibrations. Swaps = Refits + Fallbacks.
	Refits    int
	Fallbacks int
	Swaps     int
	// MaxScore is the worst drift score seen across the run.
	MaxScore float64
}

// msState is the per-microservice streak bookkeeping.
type msState struct {
	streak  int
	pending []profiling.Sample // samples of the current drifted streak
	ratios  []float64          // observed/predicted per pending sample
	// moments accumulates drift scores across the whole run (one per
	// evaluated window), merged window by window — introspection surface
	// for tests and debugging, never fed back into decisions.
	moments stats.Moments
}

// Detector is the streaming drift detector. It is not safe for concurrent
// use; the control loop drives it from one goroutine per controller.
type Detector struct {
	cfg   Config
	state map[string]*msState
	stats Stats
}

// NewDetector builds a detector with cfg's defaults applied.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), state: make(map[string]*msState)}
}

// Config returns the effective configuration (defaults applied).
func (d *Detector) Config() Config { return d.cfg }

// Stats returns a copy of the cumulative counters.
func (d *Detector) Stats() Stats { return d.stats }

// ScoreMoments returns the run-level moments of a microservice's drift
// scores (zero-value Moments if never scored).
func (d *Detector) ScoreMoments(ms string) stats.Moments {
	if st, ok := d.state[ms]; ok {
		return st.moments
	}
	return stats.Moments{}
}

// ObserveWindow scores one reconciliation window: samples maps each
// microservice to the window's live profiling samples, models supplies the
// predictions to compare against (the planner's current models, including
// any earlier swaps). It returns the model swaps the window triggered, in
// sorted microservice order; the caller owns installing them.
//
// A microservice absent from samples, or present with fewer than MinSamples
// usable points, is a no-signal window for it: the streak neither advances
// nor resets (an observability gap must not erase accumulated evidence).
func (d *Detector) ObserveWindow(models map[string]profiling.Model, samples map[string][]profiling.Sample) []Swap {
	d.stats.Windows++
	mss := make([]string, 0, len(samples))
	for ms := range samples {
		if _, ok := models[ms]; ok {
			mss = append(mss, ms)
		}
	}
	sort.Strings(mss)

	var swaps []Swap
	for _, ms := range mss {
		model := models[ms]
		window := samples[ms]
		usable := make([]profiling.Sample, 0, len(window))
		ratios := make([]float64, 0, len(window))
		for _, s := range window {
			if s.TailMs <= 0 {
				continue
			}
			pred := model.Predict(s.Workload, s.CPUUtil, s.MemUtil)
			if !(pred > 0) || math.IsInf(pred, 1) {
				continue
			}
			usable = append(usable, s)
			ratios = append(ratios, s.TailMs/pred)
		}
		if len(usable) < d.cfg.MinSamples {
			continue // no signal: streak untouched
		}
		st, ok := d.state[ms]
		if !ok {
			st = &msState{}
			d.state[ms] = st
		}
		med := stats.Quantile(ratios, 0.5)
		score := med - 1
		if d.cfg.Downward && med < 1 {
			score = 1/med - 1
		}
		if score < 0 {
			score = 0
		}
		var wm stats.Moments
		wm.Add(score)
		st.moments.Merge(wm)
		if score > d.stats.MaxScore {
			d.stats.MaxScore = score
		}

		if score <= d.cfg.Threshold {
			st.streak = 0
			st.pending = st.pending[:0]
			st.ratios = st.ratios[:0]
			continue
		}
		d.stats.Detections++
		st.streak++
		st.pending = append(st.pending, usable...)
		st.ratios = append(st.ratios, ratios...)
		if st.streak < d.cfg.Consecutive {
			continue
		}
		sw, ok := d.refit(ms, model, st.pending, st.ratios, score)
		st.streak = 0
		st.pending = nil
		st.ratios = nil
		if !ok {
			continue
		}
		d.stats.Swaps++
		if sw.Segmented {
			d.stats.Refits++
		} else {
			d.stats.Fallbacks++
		}
		swaps = append(swaps, sw)
	}
	return swaps
}

// refit builds a replacement model from the drifted streak's pooled samples.
func (d *Detector) refit(ms string, old profiling.Model, pending []profiling.Sample, ratios []float64, score float64) (Swap, bool) {
	if m, ok := d.segmentedRefit(ms, pending); ok {
		return Swap{Microservice: ms, Model: m, Score: score, Segmented: true, Ratio: 1}, true
	}
	r := d.recalibrationRatio(ratios)
	if r == 1 {
		return Swap{}, false
	}
	return Swap{Microservice: ms, Model: NewScaledModel(old, r), Score: score, Ratio: r}, true
}

// segmentedRefit attempts the full piece-wise re-fit. It only accepts a
// model the planner can consume: non-negative slopes (floored later), a
// positive latency floor, and a positive knee.
func (d *Detector) segmentedRefit(ms string, pending []profiling.Sample) (profiling.Model, bool) {
	if len(pending) < d.cfg.MinRefitSamples {
		return nil, false
	}
	distinct := make(map[float64]bool, len(pending))
	xs := make([]float64, len(pending))
	ys := make([]float64, len(pending))
	maxW := 0.0
	for i, s := range pending {
		xs[i] = s.Workload
		ys[i] = s.TailMs
		distinct[s.Workload] = true
		if s.Workload > maxW {
			maxW = s.Workload
		}
	}
	if len(distinct) < d.cfg.MinDistinct {
		return nil, false
	}
	seg, err := stats.FitSegmented(xs, ys, 2)
	if err != nil {
		return nil, false
	}
	if seg.Low.Slope < 0 || seg.High.Slope < 0 || seg.Low.Intercept <= 0 {
		// A negative slope or nonpositive floor is noise, not a latency
		// curve; the planner's closed forms would mis-solve against it.
		return nil, false
	}
	m := NewSegmentModel(ms, seg, maxW)
	if knee := m.Knee(0, 0); m.Predict(knee, 0, 0) <= 0 {
		// The high segment may carry a negative intercept (continuity at
		// the knee), but it must still be positive on its own domain.
		return nil, false
	}
	return m, true
}

// recalibrationRatio derives one clamped service-time rescaling step from
// the streak's observed/predicted ratios. Queueing inflates observations
// well past the service-time shift that caused them, so the estimate is
// taken at a conservative quantile on the drift side: the 25th percentile
// for upward drift (closest to the uncontended samples), the 75th for
// downward. The result is clamped to [1/MaxRatio, MaxRatio].
func (d *Detector) recalibrationRatio(ratios []float64) float64 {
	med := stats.Quantile(ratios, 0.5)
	q := 0.25
	if med < 1 {
		q = 0.75
	}
	r := stats.Quantile(ratios, q)
	if math.IsNaN(r) || r <= 0 {
		return 1
	}
	if r > d.cfg.MaxRatio {
		r = d.cfg.MaxRatio
	}
	if r < 1/d.cfg.MaxRatio {
		r = 1 / d.cfg.MaxRatio
	}
	return r
}
