package drift

import (
	"math"
	"testing"

	"erms/internal/profiling"
	"erms/internal/stats"
)

// lineModel is a fixed knee-less linear model: Predict = slope·w + b.
type lineModel struct {
	slope, b, knee float64
}

func (m lineModel) Knee(_, _ float64) float64 { return m.knee }
func (m lineModel) Params(high bool, _, _ float64) (float64, float64) {
	return m.slope, m.b
}
func (m lineModel) Predict(w, c, mem float64) float64 { return m.slope*w + m.b }

// window builds n samples whose observed tail is ratio× the model's
// prediction at workload w.
func window(m profiling.Model, n int, w, ratio float64) []profiling.Sample {
	out := make([]profiling.Sample, n)
	for i := range out {
		out[i] = profiling.Sample{Workload: w, TailMs: ratio * m.Predict(w, 0.3, 0.3), CPUUtil: 0.3, MemUtil: 0.3}
	}
	return out
}

func TestNoSwapBelowThreshold(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2})
	models := map[string]profiling.Model{"svc": m}
	for w := 0; w < 6; w++ {
		// 1.5× observed/predicted: under the 1.75 trigger ratio.
		swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 1.5)})
		if len(swaps) != 0 {
			t.Fatalf("window %d: unexpected swap below threshold", w)
		}
	}
	st := d.Stats()
	if st.Detections != 0 || st.Swaps != 0 {
		t.Fatalf("stats = %+v, want no detections", st)
	}
	if math.Abs(st.MaxScore-0.5) > 1e-9 {
		t.Fatalf("max score = %v, want 0.5", st.MaxScore)
	}
}

func TestSingleSpikeDoesNotSwap(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2})
	models := map[string]profiling.Model{"svc": m}
	// One drifted window, then back to normal: hysteresis must hold.
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 0 {
		t.Fatal("swap after a single spike")
	}
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 1)}); len(swaps) != 0 {
		t.Fatal("swap after recovery")
	}
	// Another single spike later: the streak must have reset.
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 0 {
		t.Fatal("swap after second isolated spike — streak did not reset")
	}
	if st := d.Stats(); st.Detections != 2 || st.Swaps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAlternatingNoiseNeverFlaps(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2})
	models := map[string]profiling.Model{"svc": m}
	for w := 0; w < 20; w++ {
		ratio := 1.0
		if w%2 == 0 {
			ratio = 3
		}
		if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, ratio)}); len(swaps) != 0 {
			t.Fatalf("window %d: alternating noise triggered a swap", w)
		}
	}
}

func TestConsecutiveDriftSwaps(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2})
	models := map[string]profiling.Model{"svc": m}
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 0 {
		t.Fatal("swap one window early")
	}
	swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)})
	if len(swaps) != 1 {
		t.Fatalf("got %d swaps, want 1", len(swaps))
	}
	sw := swaps[0]
	if sw.Microservice != "svc" {
		t.Fatalf("swap for %q", sw.Microservice)
	}
	if math.Abs(sw.Score-2) > 1e-9 {
		t.Fatalf("score = %v, want 2 (3× observed)", sw.Score)
	}
	// Same workload in every sample: segmented refit is singular, so this
	// must be the recalibration fallback with ratio 3 (all ratios equal, any
	// quantile is 3).
	if sw.Segmented {
		t.Fatal("expected fallback recalibration, got segmented refit")
	}
	if math.Abs(sw.Ratio-3) > 1e-9 {
		t.Fatalf("ratio = %v, want 3", sw.Ratio)
	}
	// The swapped model predicts ~3× the old at the observed point.
	oldP, newP := m.Predict(100, 0.3, 0.3), sw.Model.Predict(100, 0.3, 0.3)
	if newP <= oldP {
		t.Fatalf("swapped model predicts %v, old %v — not recalibrated", newP, oldP)
	}
	st := d.Stats()
	if st.Swaps != 1 || st.Fallbacks != 1 || st.Refits != 0 || st.Detections != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Streak reset: the next drifted window must not immediately re-swap.
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 0 {
		t.Fatal("swap immediately after a swap — streak not reset")
	}
}

func TestNoSignalWindowPreservesStreak(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2, MinSamples: 2})
	models := map[string]profiling.Model{"svc": m}
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 0 {
		t.Fatal("early swap")
	}
	// Observability gap: no samples at all, then a window with too few.
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{}); len(swaps) != 0 {
		t.Fatal("swap on empty window")
	}
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 1, 100, 3)}); len(swaps) != 0 {
		t.Fatal("swap on under-sampled window")
	}
	// The streak survived the gaps: one more drifted window completes it.
	if swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 3)}); len(swaps) != 1 {
		t.Fatalf("streak did not survive no-signal windows: %d swaps", len(swaps))
	}
}

func TestDownwardDriftGated(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	models := map[string]profiling.Model{"svc": m}
	obs := func() map[string][]profiling.Sample {
		return map[string][]profiling.Sample{"svc": window(m, 4, 100, 0.25)}
	}
	// Default: observed far below prediction is the models' safe-side bias,
	// not drift.
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2})
	for w := 0; w < 4; w++ {
		if swaps := d.ObserveWindow(models, obs()); len(swaps) != 0 {
			t.Fatal("downward deviation swapped with Downward off")
		}
	}
	if st := d.Stats(); st.Detections != 0 || st.MaxScore != 0 {
		t.Fatalf("downward-off stats = %+v", st)
	}
	// With Downward on, 0.25× is a score of 3 and swaps after the streak.
	d = NewDetector(Config{Threshold: 0.75, Consecutive: 2, Downward: true})
	d.ObserveWindow(models, obs())
	swaps := d.ObserveWindow(models, obs())
	if len(swaps) != 1 {
		t.Fatalf("downward-on: %d swaps, want 1", len(swaps))
	}
	if r := swaps[0].Ratio; math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("downward ratio = %v, want 0.25", r)
	}
	if p := swaps[0].Model.Predict(100, 0.3, 0.3); p >= m.Predict(100, 0.3, 0.3) {
		t.Fatalf("downward swap did not lower predictions: %v", p)
	}
}

func TestRecalibrationRatioClamped(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 1, MaxRatio: 4})
	models := map[string]profiling.Model{"svc": m}
	swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, 25)})
	if len(swaps) != 1 {
		t.Fatalf("%d swaps", len(swaps))
	}
	if swaps[0].Ratio != 4 {
		t.Fatalf("ratio = %v, want clamped to 4", swaps[0].Ratio)
	}
}

func TestSegmentedRefitPath(t *testing.T) {
	// Observed latency follows a genuinely different piece-wise curve than
	// the frozen model, across a diverse workload range: the pooled streak
	// passes the refit gates and a full segmented fit wins.
	frozen := lineModel{slope: 0.005, b: 5, knee: 10_000}
	truth := func(w float64) float64 {
		if w <= 300 {
			return 0.05*w + 20
		}
		return 0.25*(w-300) + 0.05*300 + 20
	}
	mk := func(lo, hi float64, n int) []profiling.Sample {
		out := make([]profiling.Sample, n)
		for i := range out {
			w := lo + (hi-lo)*float64(i)/float64(n-1)
			out[i] = profiling.Sample{Workload: w, TailMs: truth(w), CPUUtil: 0.3, MemUtil: 0.3}
		}
		return out
	}
	d := NewDetector(Config{Threshold: 0.75, Consecutive: 2, MinRefitSamples: 8, MinDistinct: 4})
	models := map[string]profiling.Model{"svc": frozen}
	d.ObserveWindow(models, map[string][]profiling.Sample{"svc": mk(50, 400, 8)})
	swaps := d.ObserveWindow(models, map[string][]profiling.Sample{"svc": mk(100, 600, 8)})
	if len(swaps) != 1 {
		t.Fatalf("%d swaps, want 1", len(swaps))
	}
	sw := swaps[0]
	if !sw.Segmented {
		t.Fatal("expected a segmented refit, got recalibration fallback")
	}
	if sw.Ratio != 1 {
		t.Fatalf("segmented swap ratio = %v, want 1", sw.Ratio)
	}
	// The refitted model tracks the true curve far better than the frozen one.
	for _, w := range []float64{100, 250, 450, 550} {
		got, want := sw.Model.Predict(w, 0.3, 0.3), truth(w)
		if math.Abs(got-want)/want > 0.25 {
			t.Fatalf("refit predict(%v) = %v, truth %v", w, got, want)
		}
		if math.Abs(frozen.Predict(w, 0, 0)-want)/want < 0.25 {
			t.Fatalf("frozen model already accurate at %v — test lost its point", w)
		}
	}
	if st := d.Stats(); st.Refits != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScoreMomentsAccumulate(t *testing.T) {
	m := lineModel{slope: 0.01, b: 10, knee: 1000}
	d := NewDetector(Config{Threshold: 10, Consecutive: 2}) // never triggers
	models := map[string]profiling.Model{"svc": m}
	for _, r := range []float64{1, 2, 3} {
		d.ObserveWindow(models, map[string][]profiling.Sample{"svc": window(m, 4, 100, r)})
	}
	mom := d.ScoreMoments("svc")
	if mom.Count() != 3 {
		t.Fatalf("count = %d, want 3 (one score per window)", mom.Count())
	}
	if math.Abs(mom.Mean()-1) > 1e-9 { // scores 0, 1, 2
		t.Fatalf("mean score = %v, want 1", mom.Mean())
	}
	if mom.Max() != 2 || mom.Min() != 0 {
		t.Fatalf("min/max = %v/%v", mom.Min(), mom.Max())
	}
	empty := d.ScoreMoments("unknown")
	if empty.Count() != 0 {
		t.Fatal("unknown microservice should have empty moments")
	}
}

func TestScaledModelMath(t *testing.T) {
	base := lineModel{slope: 2, b: 10, knee: 500}
	s := NewScaledModel(base, 2)
	if k := s.Knee(0, 0); math.Abs(k-250) > 1e-12 {
		t.Fatalf("scaled knee = %v, want 250", k)
	}
	a, b := s.Params(false, 0, 0)
	if math.Abs(a-8) > 1e-12 || math.Abs(b-20) > 1e-12 {
		t.Fatalf("scaled params = (%v, %v), want (8, 20)", a, b)
	}
	// Nested recalibrations collapse into one wrapper with multiplied ratio.
	s2 := NewScaledModel(s, 1.5)
	if s2.Base != profiling.Model(base) {
		t.Fatal("nested ScaledModel did not collapse")
	}
	if math.Abs(s2.Ratio-3) > 1e-12 {
		t.Fatalf("collapsed ratio = %v, want 3", s2.Ratio)
	}
	// Predict switches segment at the scaled knee.
	low := s.Predict(100, 0, 0)
	if math.Abs(low-(8*100+20)) > 1e-9 {
		t.Fatalf("scaled predict = %v", low)
	}
}

func TestSegmentModelConstruction(t *testing.T) {
	fit := stats.SegmentedFit{
		Knee: math.Inf(1),
		Low:  stats.LineFit{Slope: 0.1, Intercept: 5},
		High: stats.LineFit{Slope: -0.2, Intercept: -1},
	}
	m := NewSegmentModel("svc", fit, 400)
	// +Inf knee pins to 2× max observed workload.
	if k := m.Knee(0, 0); k != 800 {
		t.Fatalf("pinned knee = %v, want 800", k)
	}
	// A negative high slope floors at minSlope; the high intercept is kept
	// as fitted (continuity at the knee makes negative values legitimate).
	a, b := m.Params(true, 0, 0)
	if a != minSlope || b != -1 {
		t.Fatalf("high params = (%v, %v)", a, b)
	}
	a, b = m.Params(false, 0, 0)
	if a != 0.1 || b != 5 {
		t.Fatalf("low params = (%v, %v)", a, b)
	}
	// The low intercept — the planner's latency floor — does floor at 0.
	neg := NewSegmentModel("svc", stats.SegmentedFit{
		Knee: 100, Low: stats.LineFit{Slope: 0.1, Intercept: -3},
	}, 400)
	if _, b := neg.Params(false, 0, 0); b != 0 {
		t.Fatalf("low intercept = %v, want floored to 0", b)
	}
	// Zero max workload still yields a positive knee.
	if k := NewSegmentModel("svc", fit, 0).Knee(0, 0); k <= 0 {
		t.Fatalf("knee = %v for zero workload", k)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := NewDetector(Config{})
	c := d.Config()
	if c.Threshold != 0.75 || c.Consecutive != 2 || c.MinSamples != 1 ||
		c.MaxRatio != 4 || c.MinRefitSamples != 8 || c.MinDistinct != 4 || c.Downward {
		t.Fatalf("defaults = %+v", c)
	}
}
