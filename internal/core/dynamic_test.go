package core

import (
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/sim"
	"erms/internal/workload"
)

// dynamicFixture builds two dissimilar variant families of one service plus
// the models/shares planning needs.
func dynamicFixture() (variants []*graph.Graph, models map[string]profiling.Model, shares map[string]float64) {
	// Family 1: entry -> a -> b (reads).
	mk1 := func() *graph.Graph {
		g := graph.New("svc", "entry")
		a := g.AddStage(g.Root, "read-a")[0]
		g.AddStage(a, "read-b")
		return g
	}
	// Family 2: entry -> c, d, e (writes).
	mk2 := func() *graph.Graph {
		g := graph.New("svc", "entry")
		c := g.AddStage(g.Root, "write-c")[0]
		g.AddStage(c, "write-d", "write-e")
		return g
	}
	variants = []*graph.Graph{mk1(), mk1(), mk1(), mk2()}
	profiles := map[string]sim.ServiceProfile{
		"entry": {BaseMs: 0.5}, "read-a": {BaseMs: 2}, "read-b": {BaseMs: 3},
		"write-c": {BaseMs: 2}, "write-d": {BaseMs: 4}, "write-e": {BaseMs: 3},
	}
	models = profiling.AnalyticModels(profiles, nil, cluster.DefaultInterference)
	cl := cluster.NewPaperCluster()
	shares = map[string]float64{}
	for ms := range profiles {
		shares[ms] = cl.DominantShare(cluster.PaperContainer(ms))
	}
	return
}

func TestDynamicGraphPlanSavesContainers(t *testing.T) {
	variants, models, shares := dynamicFixture()
	// 75% of requests follow the read family, 25% the write family.
	weights := []float64{1, 1, 1, 1}
	res, err := DynamicGraphPlan("svc", variants, weights, 200_000,
		workload.P95SLA("svc", 40), models, shares, 0.2, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 2 {
		t.Fatalf("classes = %d", res.Classes)
	}
	if res.ClassContainers >= res.CompleteContainers {
		t.Fatalf("clustering did not save: class %d vs complete %d",
			res.ClassContainers, res.CompleteContainers)
	}
	if res.Saving <= 0 {
		t.Fatalf("saving = %v", res.Saving)
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("per-class allocations = %d", len(res.PerClass))
	}
}

func TestDynamicGraphPlanSingleVariantNoSaving(t *testing.T) {
	variants, models, shares := dynamicFixture()
	res, err := DynamicGraphPlan("svc", variants[:1], nil, 100_000,
		workload.P95SLA("svc", 40), models, shares, 0.2, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 1 {
		t.Fatalf("classes = %d", res.Classes)
	}
	if res.ClassContainers != res.CompleteContainers {
		t.Fatalf("single variant should be identical: %d vs %d",
			res.ClassContainers, res.CompleteContainers)
	}
}

func TestDynamicGraphPlanErrors(t *testing.T) {
	variants, models, shares := dynamicFixture()
	sla := workload.P95SLA("svc", 40)
	if _, err := DynamicGraphPlan("svc", nil, nil, 100, sla, models, shares, 0, 0, 0.5); err == nil {
		t.Fatal("no variants accepted")
	}
	if _, err := DynamicGraphPlan("svc", variants, []float64{1}, 100, sla, models, shares, 0, 0, 0.5); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := DynamicGraphPlan("svc", variants, []float64{-1, 0, 0, 0}, 100, sla, models, shares, 0, 0, 0.5); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := DynamicGraphPlan("svc", variants, []float64{0, 0, 0, 0}, 100, sla, models, shares, 0, 0, 0.5); err == nil {
		t.Fatal("zero weights accepted")
	}
}
