package core

import (
	"testing"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/obs"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/trace"
	"erms/internal/workload"
)

func hotelController(t *testing.T, opts ...Option) *Controller {
	t.Helper()
	orch := kube.New(cluster.NewPaperCluster(), nil)
	c, err := New(apps.HotelReservation(), orch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.UseAnalyticModels()
	return c
}

func hotelRates(rate float64) map[string]float64 {
	return map[string]float64{"search": rate, "recommend": rate, "reserve": rate, "login": rate}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	bad := apps.HotelReservation()
	delete(bad.Profiles, "search")
	if _, err := New(bad, kube.New(cluster.NewPaperCluster(), nil)); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestUseAnalyticModels(t *testing.T) {
	c := hotelController(t)
	if len(c.Models) != len(c.App.Microservices()) {
		t.Fatalf("models = %d, want %d", len(c.Models), len(c.App.Microservices()))
	}
}

func TestLoadsMultiplicity(t *testing.T) {
	g := graph.New("svc", "A")
	g.AddSequential(g.Root, "B", "B") // B twice
	app := &apps.App{
		Name:   "dup",
		Graphs: []*graph.Graph{g},
		Profiles: map[string]sim.ServiceProfile{
			"A": {BaseMs: 1}, "B": {BaseMs: 1},
		},
		SLAs: map[string]workload.SLA{"svc": workload.P95SLA("svc", 100)},
		Containers: map[string]cluster.ContainerSpec{
			"A": cluster.PaperContainer("A"), "B": cluster.PaperContainer("B"),
		},
	}
	c, err := New(app, kube.New(cluster.NewPaperCluster(), nil))
	if err != nil {
		t.Fatal(err)
	}
	loads := c.Loads(map[string]float64{"svc": 1000})
	if loads["svc"]["A"] != 1000 || loads["svc"]["B"] != 2000 {
		t.Fatalf("loads = %+v", loads["svc"])
	}
}

func TestPlanRequiresModelsAndRates(t *testing.T) {
	orch := kube.New(cluster.NewPaperCluster(), nil)
	c, err := New(apps.HotelReservation(), orch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(hotelRates(1000)); err == nil {
		t.Fatal("plan without models accepted")
	}
	c.UseAnalyticModels()
	if _, err := c.Plan(map[string]float64{"search": 100}); err == nil {
		t.Fatal("missing rates accepted")
	}
}

func TestPlanProducesFullDeployment(t *testing.T) {
	c := hotelController(t)
	plan, err := c.Plan(hotelRates(5000))
	if err != nil {
		t.Fatal(err)
	}
	for _, ms := range c.App.Microservices() {
		if plan.Containers[ms] < 1 {
			t.Fatalf("no containers planned for %s", ms)
		}
	}
	// Shared microservices get priority ranks covering their services.
	for _, ms := range c.App.Shared() {
		if len(plan.Ranks[ms]) < 2 {
			t.Fatalf("shared %s has ranks %v", ms, plan.Ranks[ms])
		}
	}
}

func TestPlanFCFSSchemeHasNoRanks(t *testing.T) {
	c := hotelController(t, WithScheme(multiplex.SchemeFCFS))
	plan, err := c.Plan(hotelRates(5000))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ranks != nil {
		t.Fatal("FCFS plan should have no ranks")
	}
	if c.Priorities(plan) != nil {
		t.Fatal("FCFS priorities should be nil")
	}
}

func TestApplyScalesOrchestrator(t *testing.T) {
	c := hotelController(t)
	plan, err := c.Plan(hotelRates(5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if got := c.Orch.TotalReplicas(); got != plan.TotalContainers() {
		t.Fatalf("orchestrator replicas %d != plan %d", got, plan.TotalContainers())
	}
	for ms, n := range plan.Containers {
		if c.Orch.Cluster().CountFor(ms) != n {
			t.Fatalf("%s placed %d, want %d", ms, c.Orch.Cluster().CountFor(ms), n)
		}
	}
}

func TestEvaluateMeetsSLA(t *testing.T) {
	// The headline integration test: Erms plans from analytic models and the
	// simulated deployment actually meets its SLAs (§6.3: violation < 2%).
	c := hotelController(t, WithScheduler(&provision.InterferenceAware{Groups: 4}))
	res, err := c.Evaluate(hotelRates(4000), 2, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for svc, v := range res.Violations {
		if v > 0.05 {
			t.Fatalf("service %s violates SLA %.1f%% of the time (tail %v ms)",
				svc, v*100, res.TailLatency[svc])
		}
	}
	if res.TotalContainers <= 0 {
		t.Fatal("no containers deployed")
	}
}

func TestEvaluatePlanReusesPlan(t *testing.T) {
	c := hotelController(t)
	plan, err := c.Plan(hotelRates(3000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.EvaluatePlan(plan, hotelRates(3000), 1.5, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != plan {
		t.Fatal("plan not propagated")
	}
	if len(res.TailLatency) != 4 {
		t.Fatalf("services measured = %d", len(res.TailLatency))
	}
}

func TestPriorityPlanUsesFewerContainersThanFCFS(t *testing.T) {
	// §6.4.2: priority scheduling saves containers relative to FCFS at the
	// same SLAs.
	prio := hotelController(t)
	fcfs := hotelController(t, WithScheme(multiplex.SchemeFCFS))
	rates := hotelRates(20000)
	p1, err := prio.Plan(rates)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fcfs.Plan(rates)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalContainers() > p2.TotalContainers() {
		t.Fatalf("priority %d > fcfs %d containers", p1.TotalContainers(), p2.TotalContainers())
	}
}

func TestProfileOffline(t *testing.T) {
	// Empirical profiling on a tiny one-microservice app: models get fitted
	// from simulated sweeps.
	g := graph.New("svc", "A")
	app := &apps.App{
		Name:       "tiny",
		Graphs:     []*graph.Graph{g},
		Profiles:   map[string]sim.ServiceProfile{"A": {BaseMs: 20, CV: 0.5}},
		SLAs:       map[string]workload.SLA{"svc": workload.P95SLA("svc", 100)},
		Containers: map[string]cluster.ContainerSpec{"A": cluster.PaperContainer("A")},
	}
	orch := kube.New(cluster.New(4, cluster.PaperHost), nil)
	c, err := New(app, orch)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := c.ProfileOffline(OfflineConfig{
		// Two containers of 4 threads at 20ms: saturation ~24k/min.
		Rates:     []float64{2_000, 8_000, 14_000, 19_000, 23_000},
		Levels:    []workload.Interference{{CPU: 0.1, Mem: 0.1}, {CPU: 0.5, Mem: 0.4}, {CPU: 0.3, Mem: 0.6}},
		WindowMin: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed fits: %v", failed)
	}
	m, ok := c.Models["A"]
	if !ok {
		t.Fatal("no fitted model for A")
	}
	// The fitted model must predict more latency under heavier load.
	if m.Predict(11_000, 0.1, 0.1) <= m.Predict(1_000, 0.1, 0.1) {
		t.Fatal("fitted model not increasing in workload")
	}
	// Profiling cleaned up after itself.
	if len(orch.Cluster().Containers()) != 0 {
		t.Fatal("profiling left containers behind")
	}
}

func TestEvaluateWithOfflineProfiledModels(t *testing.T) {
	// Full pipeline: profile offline, plan from the fitted models, deploy,
	// and meet the SLA in simulation.
	g := graph.New("svc", "A")
	g.AddStage(g.Root, "B")
	app := &apps.App{
		Name:   "pair",
		Graphs: []*graph.Graph{g},
		Profiles: map[string]sim.ServiceProfile{
			"A": {BaseMs: 8, CV: 0.5},
			"B": {BaseMs: 15, CV: 0.5},
		},
		SLAs: map[string]workload.SLA{"svc": workload.P95SLA("svc", 120)},
		Containers: map[string]cluster.ContainerSpec{
			"A": cluster.PaperContainer("A"),
			"B": cluster.PaperContainer("B"),
		},
	}
	orch := kube.New(cluster.New(8, cluster.PaperHost), nil)
	c, err := New(app, orch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProfileOffline(OfflineConfig{
		Rates:     []float64{3_000, 12_000, 22_000, 28_000, 31_000},
		Levels:    []workload.Interference{{CPU: 0.1, Mem: 0.1}, {CPU: 0.4, Mem: 0.3}, {CPU: 0.2, Mem: 0.55}},
		WindowMin: 3,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Evaluate(map[string]float64{"svc": 20_000}, 2, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations["svc"]; v > 0.07 {
		t.Fatalf("violation rate %v with fitted models (tail %v)", v, res.TailLatency["svc"])
	}
}

func TestProfileOfflineFromTraces(t *testing.T) {
	// The production profiling path: spans -> Eq. 1 latencies -> fit.
	g := graph.New("svc", "A")
	app := &apps.App{
		Name:       "tiny-traced",
		Graphs:     []*graph.Graph{g},
		Profiles:   map[string]sim.ServiceProfile{"A": {BaseMs: 20, CV: 0.5}},
		SLAs:       map[string]workload.SLA{"svc": workload.P95SLA("svc", 100)},
		Containers: map[string]cluster.ContainerSpec{"A": cluster.PaperContainer("A")},
	}
	orch := kube.New(cluster.New(4, cluster.PaperHost), nil)
	c, err := New(app, orch)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := c.ProfileOffline(OfflineConfig{
		Rates:      []float64{2_000, 8_000, 14_000, 19_000, 23_000},
		Levels:     []workload.Interference{{CPU: 0.1, Mem: 0.1}, {CPU: 0.5, Mem: 0.4}, {CPU: 0.3, Mem: 0.6}},
		WindowMin:  3,
		FromTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed fits: %v", failed)
	}
	m := c.Models["A"]
	if m.Predict(11_000, 0.1, 0.1) <= m.Predict(1_000, 0.1, 0.1) {
		t.Fatal("trace-fitted model not increasing in workload")
	}
}

func TestMinuteAggregatesMatchDirectSamples(t *testing.T) {
	// Trace-derived workload estimates track the simulator's exact counts.
	g := graph.New("svc", "A")
	cl := cluster.New(2, cluster.PaperHost)
	for i := 0; i < 2; i++ {
		if _, err := cl.Place(cluster.PaperContainer("A"), i); err != nil {
			t.Fatal(err)
		}
	}
	coord := trace.NewCoordinator(0.1)
	rt, err := sim.NewRuntime(sim.Config{
		Seed:        5,
		Cluster:     cl,
		Profiles:    map[string]sim.ServiceProfile{"A": {BaseMs: 2, CV: 0.5}},
		Graphs:      []*graph.Graph{g},
		Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: 12_000}},
		DurationMin: 3,
		WarmupMin:   0,
		SampleRate:  0.1,
		Observer:    coord,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	aggs := coord.MinuteAggregates(func(string) int { return 2 })
	if len(aggs) == 0 {
		t.Fatal("no aggregates")
	}
	direct := map[int]sim.MinuteSample{}
	for _, s := range res.Samples {
		direct[s.Minute] = s
	}
	for _, a := range aggs {
		d, ok := direct[a.Minute]
		if !ok {
			continue
		}
		if rel := (a.PerContainerCalls - d.PerContainerCalls) / d.PerContainerCalls; rel > 0.15 || rel < -0.15 {
			t.Fatalf("minute %d: trace estimate %.0f vs direct %.0f", a.Minute, a.PerContainerCalls, d.PerContainerCalls)
		}
		if rel := (a.TailMs - d.TailMs) / d.TailMs; rel > 0.35 || rel < -0.35 {
			t.Fatalf("minute %d: trace tail %.2f vs direct %.2f", a.Minute, a.TailMs, d.TailMs)
		}
	}
}

func TestEvaluateWithResilience(t *testing.T) {
	res := &sim.Resilience{
		TimeoutSLAMultiple: 3,
		AttemptTimeoutMs:   50,
		MaxAttempts:        2,
		RetryBudget:        0.1,
	}
	c := hotelController(t, WithResilience(res))
	rec := obs.New(c.Metrics)
	c.Obs = rec
	out, err := c.Evaluate(hotelRates(4000), 1.5, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.ErrorRate == nil {
		t.Fatal("resilient evaluation reported no ErrorRate map")
	}
	for svc, er := range out.ErrorRate {
		if er > 0.05 {
			t.Fatalf("service %s errors %.1f%% on a healthy cluster", svc, er*100)
		}
	}
	if out.Goodput <= 0 {
		t.Fatalf("goodput = %v, want > 0", out.Goodput)
	}
	// A well-provisioned plan passes nearly everything within SLA.
	if total := 4 * 4000.0; out.Goodput < total*0.9 {
		t.Fatalf("goodput %v req/min, want ≈ %v", out.Goodput, total)
	}
	// The data-plane counters are mirrored into self-telemetry.
	if got := rec.Value(obs.CtrDataAttempts); got <= 0 {
		t.Fatalf("attempts counter = %v, want > 0", got)
	}
}

func TestEvaluateWithoutResilienceHasNoErrorRate(t *testing.T) {
	c := hotelController(t)
	out, err := c.Evaluate(hotelRates(3000), 1, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.ErrorRate != nil {
		t.Fatalf("infallible evaluation grew an ErrorRate map: %v", out.ErrorRate)
	}
	if out.Goodput != 0 {
		t.Fatalf("infallible evaluation reports goodput %v", out.Goodput)
	}
}
