package core

import (
	"errors"
	"fmt"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/workload"
)

// DynamicGraphResult compares the two ways of scaling a service whose
// requests follow different dependency-graph variants (§7): planning one
// complete (union) graph for the full workload versus clustering variants
// into classes and scaling each class for its own share — the improvement
// the paper sketches in its conclusion (§9).
type DynamicGraphResult struct {
	// Classes is the number of variant classes found.
	Classes int
	// CompleteContainers is the total under complete-graph planning.
	CompleteContainers int
	// ClassContainers is the total under per-class planning.
	ClassContainers int
	// Saving is 1 − class/complete (positive when clustering helps).
	Saving float64
	// PerClass holds each class's allocation.
	PerClass []*scaling.Allocation
}

// DynamicGraphPlan scales a dynamic-graph service both ways.
//
// variants are the observed dependency graphs of the service; weights[i] is
// the fraction of requests following variants[i] (they are normalized, and
// uniform when nil). rate is the service's total request rate (req/min).
// threshold is the clustering similarity in [0,1].
func DynamicGraphPlan(
	service string,
	variants []*graph.Graph,
	weights []float64,
	rate float64,
	sla workload.SLA,
	models map[string]profiling.Model,
	shares map[string]float64,
	cpuUtil, memUtil float64,
	threshold float64,
) (*DynamicGraphResult, error) {
	if len(variants) == 0 {
		return nil, errors.New("core: no graph variants")
	}
	if weights == nil {
		weights = make([]float64, len(variants))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(variants) {
		return nil, errors.New("core: weights/variants length mismatch")
	}
	var wSum float64
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("core: negative weight")
		}
		wSum += w
	}
	if wSum <= 0 {
		return nil, errors.New("core: zero total weight")
	}

	planGraph := func(g *graph.Graph, r float64) (*scaling.Allocation, error) {
		in := scaling.Input{
			Graph:     g,
			SLA:       workload.SLA{Service: g.Service, Threshold: sla.Threshold, Percentile: sla.Percentile},
			Models:    models,
			Shares:    shares,
			Workloads: make(map[string]float64),
			CPUUtil:   cpuUtil,
			MemUtil:   memUtil,
		}
		for _, ms := range g.Microservices() {
			in.Workloads[ms] = r * float64(len(g.NodesFor(ms)))
		}
		return scaling.Plan(in)
	}

	// Complete graph at the full rate: every request is assumed to traverse
	// the union, which over-provisions the variant-specific branches (§7).
	complete, err := graph.Merge(service, variants...)
	if err != nil {
		return nil, err
	}
	completeAlloc, err := planGraph(complete, rate)
	if err != nil {
		return nil, fmt.Errorf("core: complete-graph plan: %w", err)
	}

	// Class-based: cluster variants, attribute each variant's weight to its
	// class, and plan each class for its own share of the rate.
	classes, err := graph.Cluster(service, variants, threshold)
	if err != nil {
		return nil, err
	}
	classWeight := make([]float64, len(classes))
	for vi, v := range variants {
		best, bestSim := 0, -1.0
		for ci, c := range classes {
			if v.Root.Microservice != c.Root.Microservice {
				continue
			}
			if s := graph.Similarity(v, c); s > bestSim {
				best, bestSim = ci, s
			}
		}
		classWeight[best] += weights[vi] / wSum
	}
	result := &DynamicGraphResult{
		Classes:            len(classes),
		CompleteContainers: completeAlloc.TotalContainers(),
	}
	for ci, c := range classes {
		if classWeight[ci] == 0 {
			continue
		}
		alloc, err := planGraph(c, rate*classWeight[ci])
		if err != nil {
			return nil, fmt.Errorf("core: class %d plan: %w", ci, err)
		}
		result.PerClass = append(result.PerClass, alloc)
		result.ClassContainers += alloc.TotalContainers()
	}
	if result.CompleteContainers > 0 {
		result.Saving = 1 - float64(result.ClassContainers)/float64(result.CompleteContainers)
	}
	return result, nil
}
