// Package core assembles the Erms system of Fig. 6: the Tracing Coordinator
// and metrics store feed the Offline Profiler; the Online Scaling pipeline
// (graph merge → latency target computation → priority scheduling) plans
// container counts per microservice; and the Resource Provisioning module
// places them on the cluster through the mini-Kubernetes orchestrator.
package core

import (
	"errors"
	"fmt"
	"sort"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/drift"
	"erms/internal/kube"
	"erms/internal/metrics"
	"erms/internal/multiplex"
	"erms/internal/obs"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/sim"
	"erms/internal/trace"
	"erms/internal/workload"
)

// Option configures a Controller.
type Option func(*Controller)

// WithScheme selects the shared-microservice scheme (default priority).
func WithScheme(s multiplex.Scheme) Option {
	return func(c *Controller) { c.Scheme = s }
}

// WithDelta sets the probabilistic priority parameter (default 0.05, §5.3.2).
func WithDelta(d float64) Option {
	return func(c *Controller) { c.Delta = d }
}

// WithInterferenceModel overrides the service-time inflation model.
func WithInterferenceModel(m cluster.InterferenceModel) Option {
	return func(c *Controller) { c.Interference = m }
}

// WithScheduler overrides the placement scheduler (default: the caller's
// orchestrator scheduler is kept).
func WithScheduler(s kube.Scheduler) Option {
	return func(c *Controller) { c.scheduler = s }
}

// WithObservability attaches a self-observability recorder to the
// controller and its orchestrator.
func WithObservability(r *obs.Recorder) Option {
	return func(c *Controller) { c.Obs = r }
}

// WithResilience enables the data-plane fault model in every evaluation
// simulation: deadline propagation, budgeted retries, circuit breaking,
// admission control, and crash failure semantics. Nil (the default) keeps
// the infallible data plane.
func WithResilience(r *sim.Resilience) Option {
	return func(c *Controller) { c.Resilience = r }
}

// WithDriftDetection enables the online profiling drift loop: every
// reconciliation window the live per-microservice latency samples are
// scored against the current models, and a microservice whose observations
// stay past the configured threshold for the configured number of
// consecutive windows gets its model re-fitted from those live samples and
// swapped in (see package drift). Off by default — without this option the
// controller plans against frozen models exactly as before, byte for byte.
//
// Live samples are per-minute aggregates recorded after warmup, so the
// reconciler's window must span at least two whole minutes (WindowMin >= 2
// with WarmupMin < 1) for the detector to see any signal; shorter windows
// are all no-signal and the detector never fires.
func WithDriftDetection(cfg drift.Config) Option {
	return func(c *Controller) { c.Drift = drift.NewDetector(cfg) }
}

// WithoutPlanTemplates disables the compiled-plan-template cache, forcing
// every window through the naive scaling path. Output is bit-identical
// either way; this exists for benchmarking the naive path and as an escape
// hatch. It implies WithoutIncrementalPlanning (the incremental planner is
// built on the template cache).
func WithoutPlanTemplates() Option {
	return func(c *Controller) {
		c.PlanCache = nil
		c.noIncremental = true
	}
}

// WithoutIncrementalPlanning disables the change-driven incremental
// planner, replanning every service every window through the (still
// template-cached, unless WithoutPlanTemplates) monolithic path. Output is
// bit-identical either way; this exists for benchmarking and as an escape
// hatch.
func WithoutIncrementalPlanning() Option {
	return func(c *Controller) { c.noIncremental = true }
}

// WithPlanShards sets the incremental planner's shard count. Sharing
// groups are pinned to one shard, so the count is a parallelism hint —
// output is byte-identical at any value. <= 0 (the default) sizes shards
// to the parallel worker pool.
func WithPlanShards(n int) Option {
	return func(c *Controller) { c.planShards = n }
}

// Controller is the Erms resource manager for one application on one
// cluster.
type Controller struct {
	App  *apps.App
	Orch *kube.Orchestrator

	// Metrics is the Prometheus-substitute store scraped every window.
	Metrics *metrics.Store
	// Coordinator collects spans when simulations run with tracing enabled.
	Coordinator *trace.Coordinator
	// Obs is the control plane's self-observability recorder. Nil (the
	// default) disables self-telemetry at zero cost; when set, the
	// controller and the reconciler wrapping it count plans, applies,
	// rollbacks, and simulation-engine activity under erms.self.*.
	Obs *obs.Recorder

	// Models holds the per-microservice latency model used for scaling.
	Models map[string]profiling.Model
	// Drift, when non-nil (WithDriftDetection), is the streaming detector
	// that compares each evaluation window's observed latency against Models
	// and re-fits/swaps a model that has drifted past threshold for enough
	// consecutive windows. The swap is an ordinary map write of a fresh
	// immutable model — the template cache's parameter-hash contract turns
	// it into a precise single-service invalidation.
	Drift *drift.Detector

	// Scheme is the shared-microservice handling (priority by default;
	// SchemeFCFS yields the Latency-Target-Computation-only ablation of
	// §6.4.1).
	Scheme multiplex.Scheme
	// Delta is the δ of the probabilistic priority policy.
	Delta float64
	// Interference is the host-utilization → service-time inflation model.
	Interference cluster.InterferenceModel
	// Resilience, when non-nil, enables the data-plane fault model in every
	// evaluation simulation (see sim.Resilience).
	Resilience *sim.Resilience

	// PlanCache memoizes compiled plan templates per service (on by
	// default): steady-state windows replay the precompiled Algorithm-1
	// reduction instead of re-validating and re-merging every graph, with
	// automatic invalidation when graphs, models, shares, or the SLA change.
	// Nil (WithoutPlanTemplates) plans naively. Either way the produced
	// plans are bit-identical.
	PlanCache *scaling.TemplateCache
	// Planner is the change-driven incremental planner (on by default,
	// sharing PlanCache): windows replan only the sharing groups whose
	// inputs changed and fan dirty groups out across shards, producing
	// byte-identical plans to the monolithic path. Nil
	// (WithoutIncrementalPlanning) replans everything every window.
	Planner *multiplex.IncrementalPlanner

	noIncremental bool
	planShards    int
	scheduler     kube.Scheduler
	// sharesCache memoizes the per-microservice dominant shares, which only
	// depend on container specs and total cluster capacity; it refreshes
	// whenever capacity changes (e.g. chaos host loss).
	sharesCores float64
	sharesMemMB float64
	shares      map[string]float64
}

// New creates a controller. The orchestrator's cluster must be the one the
// application will run on.
func New(app *apps.App, orch *kube.Orchestrator, opts ...Option) (*Controller, error) {
	if app == nil || orch == nil {
		return nil, errors.New("core: nil app or orchestrator")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		App:          app,
		Orch:         orch,
		Metrics:      metrics.NewStore(),
		Coordinator:  trace.NewCoordinator(0.1),
		Models:       make(map[string]profiling.Model),
		Scheme:       multiplex.SchemePriority,
		Delta:        0.05,
		Interference: cluster.DefaultInterference,
		PlanCache:    scaling.NewTemplateCache(),
	}
	for _, o := range opts {
		o(c)
	}
	if !c.noIncremental && c.PlanCache != nil {
		c.Planner = multiplex.NewIncrementalPlanner(c.PlanCache, c.planShards)
	}
	if c.scheduler != nil {
		orch.SetScheduler(c.scheduler)
	}
	if c.Obs != nil {
		orch.SetRecorder(c.Obs)
	}
	return c, nil
}

// UseAnalyticModels fills Models with first-principles models derived from
// the application's service profiles — the fast path for large-scale
// experiments (§6.5). Empirical profiling via ProfileOffline replaces them
// with fitted models.
func (c *Controller) UseAnalyticModels() {
	threads := make(map[string]int, len(c.App.Containers))
	for ms, spec := range c.App.Containers {
		threads[ms] = spec.Threads
	}
	c.Models = profiling.AnalyticModels(c.App.Profiles, threads, c.Interference)
}

// ObserveDrift feeds one evaluation window's simulation result to the drift
// detector and installs whatever model swaps it decided on. It returns the
// swaps (nil when drift detection is disabled, the result carries no
// samples, or nothing drifted). The per-minute samples of res are exactly
// the (L, γ, C, M) tuples offline profiling consumes, so the detector
// compares like with like; minutes dropped by observability gaps are simply
// absent and count as no-signal windows.
func (c *Controller) ObserveDrift(res *sim.Result) []drift.Swap {
	if c.Drift == nil || res == nil {
		return nil
	}
	swaps := c.Drift.ObserveWindow(c.Models, profiling.FromMinuteSamples(res.Samples))
	for _, sw := range swaps {
		c.Models[sw.Microservice] = sw.Model
	}
	if c.Obs != nil {
		st := c.Drift.Stats()
		c.Obs.Set(obs.CtrDriftWindows, float64(st.Windows))
		c.Obs.Set(obs.CtrDriftDetections, float64(st.Detections))
		c.Obs.Set(obs.CtrDriftRefits, float64(st.Refits))
		c.Obs.Set(obs.CtrDriftFallbacks, float64(st.Fallbacks))
		c.Obs.Set(obs.CtrModelSwaps, float64(st.Swaps))
		c.Obs.SetMax(obs.GaugeDriftScore, st.MaxScore)
	}
	return swaps
}

// Loads returns loads[svc][ms]: the calls/minute service svc imposes on
// microservice ms at the given request rates, accounting for microservices
// that occupy multiple graph positions.
func (c *Controller) Loads(rates map[string]float64) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(c.App.Graphs))
	for _, g := range c.App.Graphs {
		rate := rates[g.Service]
		m := make(map[string]float64)
		for _, ms := range g.Microservices() {
			m[ms] = rate * float64(len(g.NodesFor(ms)))
		}
		out[g.Service] = m
	}
	return out
}

// Plan runs Online Scaling for the given per-service request rates
// (requests/minute): initial latency targets, priority assignment at shared
// microservices, recomputation with modified workloads, and the merged
// container counts (§5.3).
func (c *Controller) Plan(rates map[string]float64) (*multiplex.Plan, error) {
	if len(c.Models) == 0 {
		return nil, errors.New("core: no latency models; call UseAnalyticModels or ProfileOffline first")
	}
	for _, g := range c.App.Graphs {
		if rates[g.Service] <= 0 {
			return nil, fmt.Errorf("core: no rate for service %s", g.Service)
		}
	}
	cl := c.Orch.Cluster()
	cpu, mem := cl.MeanCPUUtil(), cl.MeanMemUtil()
	shares := c.dominantShares(cl)
	inputs := make(map[string]scaling.Input, len(c.App.Graphs))
	for _, g := range c.App.Graphs {
		inputs[g.Service] = scaling.Input{
			Graph:   g,
			SLA:     c.App.SLAs[g.Service],
			Models:  c.Models,
			Shares:  shares,
			CPUUtil: cpu,
			MemUtil: mem,
		}
	}
	var plan *multiplex.Plan
	var err error
	if c.Planner != nil {
		plan, err = c.Planner.PlanScheme(c.Scheme, inputs, c.Loads(rates), c.App.Shared())
	} else {
		plan, err = multiplex.PlanSchemeCached(c.Scheme, inputs, c.Loads(rates), c.App.Shared(), c.PlanCache)
	}
	if err == nil {
		c.Obs.Inc(obs.CtrPlans)
		if c.Obs != nil && c.PlanCache != nil {
			st := c.PlanCache.Stats()
			c.Obs.Set(obs.CtrPlanTemplateHits, float64(st.Hits))
			c.Obs.Set(obs.CtrPlanTemplateCompiles, float64(st.Compiles))
			c.Obs.Set(obs.CtrPlanTemplateInvalidations, float64(st.Invalidations))
		}
		if c.Obs != nil && c.Planner != nil {
			st := c.Planner.Stats()
			c.Obs.Set(obs.CtrPlanSkipped, float64(st.SkippedServices))
			c.Obs.Set(obs.CtrPlanDirty, float64(st.DirtyServices))
			c.Obs.Set(obs.CtrPlanShards, float64(st.ShardRuns))
		}
	}
	return plan, err
}

// dominantShares returns the per-microservice dominant resource share,
// cached: shares depend only on the container specs and the cluster's total
// capacity, so the map is rebuilt only when capacity changes (host loss or
// recovery), not every window.
func (c *Controller) dominantShares(cl *cluster.Cluster) map[string]float64 {
	cores, mem := cl.TotalCores(), cl.TotalMemMB()
	if c.shares != nil && cores == c.sharesCores && mem == c.sharesMemMB {
		return c.shares
	}
	shares := make(map[string]float64, len(c.App.Containers))
	for ms, spec := range c.App.Containers {
		shares[ms] = cl.DominantShare(spec)
	}
	c.shares, c.sharesCores, c.sharesMemMB = shares, cores, mem
	return shares
}

// Explain renders the Algorithm 1 merge tree and latency-target derivation
// for one service at the given request rates — the Fig. 7/8 walkthrough as
// an operator-facing debugging tool. It uses each service's own workload
// (the initial Latency Target Computation pass of §5.3.2).
func (c *Controller) Explain(service string, rates map[string]float64) (string, error) {
	if len(c.Models) == 0 {
		return "", errors.New("core: no latency models; call UseAnalyticModels or ProfileOffline first")
	}
	g := c.App.Graph(service)
	if g == nil {
		return "", fmt.Errorf("core: unknown service %s", service)
	}
	cl := c.Orch.Cluster()
	shares := c.dominantShares(cl)
	in := scaling.Input{
		Graph:     g,
		SLA:       c.App.SLAs[service],
		Models:    c.Models,
		Shares:    shares,
		Workloads: c.Loads(rates)[service],
		CPUUtil:   cl.MeanCPUUtil(),
		MemUtil:   cl.MeanMemUtil(),
	}
	return scaling.Explain(in)
}

// Apply reconciles the plan onto the cluster through the orchestrator with
// atomic-or-rollback semantics: either every microservice reaches its
// planned count, or the deployment is restored to its pre-apply replica
// counts (microservices created by this apply are deleted again) and the
// original error is returned. A mid-apply failure therefore never leaves the
// orchestrator halfway between two plans.
func (c *Controller) Apply(plan *multiplex.Plan) error {
	names := make([]string, 0, len(plan.Containers))
	for ms := range plan.Containers {
		names = append(names, ms)
	}
	sort.Strings(names)
	type prior struct {
		existed  bool
		replicas int
	}
	snap := make(map[string]prior, len(names))
	for _, ms := range names {
		d, ok := c.Orch.Deployment(ms)
		snap[ms] = prior{existed: ok, replicas: d.Replicas}
	}
	for i, ms := range names {
		if err := c.Orch.Apply(c.App.Containers[ms], plan.Containers[ms]); err != nil {
			// Roll back everything touched so far, including the partial
			// progress of the failed microservice. Rollback only deletes or
			// scales toward prior counts; a scale-up back to a prior count can
			// itself fail on a degraded cluster, which we fold into the error.
			var rbErr error
			for j := i; j >= 0; j-- {
				p := snap[names[j]]
				var e error
				if !p.existed {
					e = c.Orch.Delete(names[j])
				} else {
					e = c.Orch.Scale(names[j], p.replicas)
				}
				if e != nil && rbErr == nil {
					rbErr = e
				}
			}
			c.Obs.Inc(obs.CtrApplyRollbacks)
			if rbErr != nil {
				return fmt.Errorf("core: applying %s: %w (rollback incomplete: %v)", ms, err, rbErr)
			}
			return fmt.Errorf("core: applying %s: %w (rolled back)", ms, err)
		}
	}
	metrics.CollectCluster(c.Metrics, c.Orch.Cluster(), 0)
	c.Obs.Inc(obs.CtrApplies)
	return nil
}

// Priorities converts a plan's ranks into the per-microservice service
// priorities the simulator's δ-policy consumes. Nil for non-priority
// schemes.
func (c *Controller) Priorities(plan *multiplex.Plan) map[string]map[string]int {
	if plan.Scheme != multiplex.SchemePriority {
		return nil
	}
	return plan.Ranks
}

// EvalResult summarizes one evaluation window.
type EvalResult struct {
	Plan *multiplex.Plan
	Sim  *sim.Result
	// TotalContainers deployed during the window.
	TotalContainers int
	// Violations aggregates per-service SLA misses (slow completions plus
	// errors over everything issued).
	Violations map[string]float64
	// TailLatency holds the per-service P95 end-to-end latency.
	TailLatency map[string]float64
	// ErrorRate holds the per-service fraction of requests that failed
	// outright. Nil unless the controller runs with Resilience.
	ErrorRate map[string]float64
	// Goodput is the aggregate rate of requests completed within their SLA,
	// in requests per minute across all services. Zero unless the controller
	// runs with Resilience.
	Goodput float64
}

// Evaluate plans for the given rates, applies the plan, and runs the
// discrete-event simulator for durationMin minutes to measure real
// end-to-end behaviour (including queueing and interference the analytic
// models only approximate).
func (c *Controller) Evaluate(rates map[string]float64, durationMin, warmupMin float64, seed uint64) (*EvalResult, error) {
	plan, err := c.Plan(rates)
	if err != nil {
		return nil, err
	}
	return c.EvaluatePlan(plan, rates, durationMin, warmupMin, seed)
}

// EvalOpts carries fault-injection and workload-shape inputs for one
// evaluation window.
type EvalOpts struct {
	// Failures are container/host outages injected into the window's
	// simulation (times relative to the window start).
	Failures []sim.Failure
	// DropMinutes are window minutes whose metrics and traces are lost.
	DropMinutes []int
	// Streams replaces the per-service Static patterns derived from rates
	// with explicit SLO-tiered cohort streams (see sim.Stream). Services
	// covered by at least one stream ignore their rates entry; per-tier
	// outcomes are surfaced under the erms.data.tier_* counters.
	Streams []sim.Stream
	// SimMode selects the evaluation engine fidelity: sim.SimExact (the
	// default, byte-identical to the historical serial engine) or
	// sim.SimHybrid (fluid fast path for far-from-knee microservices).
	SimMode sim.SimMode
	// SimPartitions caps the concurrent sharing-group partition tasks of
	// the evaluation run (sim.PartitionOpts.Partitions). 0 with SimExact
	// keeps the serial engine; any other combination routes through
	// sim.RunPartitioned.
	SimPartitions int
	// Fluid tunes the hybrid fast path; nil uses defaults. Ignored unless
	// SimMode is sim.SimHybrid.
	Fluid *sim.FluidConfig
}

// EvaluatePlan applies a precomputed plan and simulates it.
func (c *Controller) EvaluatePlan(plan *multiplex.Plan, rates map[string]float64, durationMin, warmupMin float64, seed uint64) (*EvalResult, error) {
	if err := c.Apply(plan); err != nil {
		return nil, err
	}
	return c.EvaluateDeployed(plan, rates, durationMin, warmupMin, seed, EvalOpts{})
}

// EvaluateDeployed simulates the *current* deployment (it does not apply the
// plan, which is used only for priorities and container accounting) with the
// given fault-injection options. The resilient control loop uses this after
// its own apply phase, so a degraded window can still be measured even when
// applying a fresh plan failed.
func (c *Controller) EvaluateDeployed(plan *multiplex.Plan, rates map[string]float64, durationMin, warmupMin float64, seed uint64, opts EvalOpts) (*EvalResult, error) {
	patterns := make(map[string]workload.Pattern, len(rates))
	streamed := make(map[string]bool, len(opts.Streams))
	for _, s := range opts.Streams {
		streamed[s.Service] = true
	}
	for svc, r := range rates {
		if !streamed[svc] {
			patterns[svc] = workload.Static{Rate: r}
		}
	}
	cfg := sim.Config{
		Seed:           seed,
		Cluster:        c.Orch.Cluster(),
		Interference:   c.Interference,
		Profiles:       c.App.Profiles,
		Graphs:         c.App.Graphs,
		Patterns:       patterns,
		SLAs:           c.App.SLAs,
		Priorities:     c.Priorities(plan),
		Delta:          c.Delta,
		DurationMin:    durationMin,
		WarmupMin:      warmupMin,
		NetworkDelayMs: 0.05,
		Observer:       c.Coordinator,
		Failures:       opts.Failures,
		DropMinutes:    opts.DropMinutes,
		Resilience:     c.Resilience,
		Streams:        opts.Streams,
	}
	var res *sim.Result
	if opts.SimMode != sim.SimExact || opts.SimPartitions != 0 {
		var err error
		res, err = sim.RunPartitioned(cfg, sim.PartitionOpts{
			Mode:       opts.SimMode,
			Partitions: opts.SimPartitions,
			Fluid:      opts.Fluid,
		})
		if err != nil {
			return nil, err
		}
	} else {
		rt, err := sim.NewRuntime(cfg)
		if err != nil {
			return nil, err
		}
		res = rt.Run()
	}
	if c.Obs != nil {
		c.Obs.Add(obs.CtrSimEvents, float64(res.Engine.Events))
		c.Obs.Add(obs.CtrSimJobsAlloc, float64(res.Engine.JobsAllocated))
		c.Obs.Add(obs.CtrSimJobsRecycled, float64(res.Engine.JobsRecycled))
		c.Obs.SetMax(obs.GaugeSimHeapPeak, float64(res.Engine.HeapPeak))
		c.Obs.Add(obs.CtrSimPartitions, float64(res.Partitions))
		c.Obs.Add(obs.CtrSimFluidContainers, float64(res.FluidContainerMinutes))
		c.Obs.Add(obs.CtrSimExactContainers, float64(res.ExactContainerMinutes))
		if c.Resilience != nil {
			d := res.Data
			c.Obs.Add(obs.CtrDataAttempts, float64(d.Attempts))
			c.Obs.Add(obs.CtrDataTimeouts, float64(d.Timeouts))
			c.Obs.Add(obs.CtrDataRetries, float64(d.Retries))
			c.Obs.Add(obs.CtrDataRetryBudgetExhausted, float64(d.RetryBudgetExhausted))
			c.Obs.Add(obs.CtrDataBreakerOpens, float64(d.BreakerOpens))
			c.Obs.Add(obs.CtrDataBreakerShortCircuits, float64(d.BreakerShortCircuits))
			c.Obs.Add(obs.CtrDataShed, float64(d.Shed))
			c.Obs.Add(obs.CtrDataCrashFailures, float64(d.CrashFailures))
			c.Obs.Add(obs.CtrDataDeadlineSkips, float64(d.DeadlineSkips))
			c.Obs.Add(obs.CtrDataUnavailable, float64(d.Unavailable))
		}
	}
	out := &EvalResult{
		Plan:            plan,
		Sim:             res,
		TotalContainers: plan.TotalContainers(),
		Violations:      make(map[string]float64),
		TailLatency:     make(map[string]float64),
	}
	if c.Resilience != nil {
		out.ErrorRate = make(map[string]float64)
	}
	errors := 0
	// Fold in sorted service order: Goodput is a float sum, and float
	// addition is not associative, so map-range order would make two
	// identical evaluations differ in the last ulp.
	perSvc := make([]string, 0, len(res.PerService))
	for svc := range res.PerService {
		perSvc = append(perSvc, svc)
	}
	sort.Strings(perSvc)
	for _, svc := range perSvc {
		sr := res.PerService[svc]
		out.Violations[svc] = sr.ViolationRate()
		out.TailLatency[svc] = sr.P95()
		errors += sr.Errors
		if c.Resilience != nil {
			out.ErrorRate[svc] = sr.ErrorRate()
			if res.SimulatedMin > 0 {
				out.Goodput += float64(sr.Good()) / res.SimulatedMin
			}
		}
	}
	if c.Obs != nil && c.Resilience != nil {
		c.Obs.Add(obs.CtrDataErrors, float64(errors))
	}
	if c.Obs != nil && len(res.PerStream) > 0 {
		// Per-SLO-tier outcome counters: success/slow/error from the stream
		// results, shed at call granularity from the data plane.
		type acc struct{ success, slow, errs int }
		byTier := make(map[workload.Tier]*acc, workload.NumTiers)
		for _, sr := range res.PerStream {
			a := byTier[sr.Tier]
			if a == nil {
				a = &acc{}
				byTier[sr.Tier] = a
			}
			a.success += sr.Good()
			a.slow += sr.Violations
			a.errs += sr.Errors
		}
		for _, tier := range workload.Tiers() {
			a := byTier[tier]
			if a == nil {
				continue
			}
			name := tier.String()
			c.Obs.Add(obs.TierDataCounter(name, "success"), float64(a.success))
			c.Obs.Add(obs.TierDataCounter(name, "slow"), float64(a.slow))
			c.Obs.Add(obs.TierDataCounter(name, "error"), float64(a.errs))
			c.Obs.Add(obs.TierDataCounter(name, "shed"), float64(res.Data.ShedByTier[tier]))
		}
	}
	return out, nil
}

// OfflineConfig drives empirical profiling (§6.2): each interference level
// is held while every workload point runs, mirroring the hour-by-hour
// iBench injection of the paper's data collection.
type OfflineConfig struct {
	// Rates are the per-service request rates (req/min) swept per level. If
	// a service is missing it uses the first rate.
	Rates []float64
	// Levels are the injected interference levels (defaults to
	// workload.InterferenceLevels).
	Levels []workload.Interference
	// WindowMin is the measured duration per (rate, level) point.
	WindowMin float64
	// ContainersPerMS fixes the profiling deployment size (default 2).
	ContainersPerMS int
	Seed            uint64
	// FitConfig tunes the model fit.
	Fit profiling.FitConfig
	// FromTraces fits from the Tracing Coordinator's sampled spans (the
	// production path of §5.1-5.2: Eq. 1 latencies, inverse-sampling
	// workload estimates) instead of the simulator's exact aggregates.
	FromTraces bool
}

// ProfileOffline runs the offline profiling sweeps on the controller's
// application and replaces Models with fitted piece-wise models. It returns
// the microservices that could not be fitted (they keep analytic models if
// present).
func (c *Controller) ProfileOffline(cfg OfflineConfig) ([]string, error) {
	if len(cfg.Rates) == 0 {
		return nil, errors.New("core: ProfileOffline needs workload rates")
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = workload.InterferenceLevels
	}
	if cfg.WindowMin <= 0 {
		cfg.WindowMin = 3
	}
	if cfg.ContainersPerMS <= 0 {
		cfg.ContainersPerMS = 2
	}
	cl := c.Orch.Cluster()

	// The (level × rate) sweep points are independent: each one deploys a
	// fixed profiling placement and runs the simulator with its own seed.
	// They fan out across the worker pool; each run gets a private clone of
	// the cluster geometry (hosts + backgrounds + placement — container IDs
	// restart per clone, but the simulator only depends on placement order)
	// and, under FromTraces, a private Tracing Coordinator. Seeds are
	// assigned by flat sweep index, matching the seed++ of a sequential
	// sweep, and results merge in sweep order, so the fitted models are
	// identical at any worker count.
	type sweepPoint struct {
		lvl  workload.Interference
		rate float64
	}
	points := make([]sweepPoint, 0, len(cfg.Levels)*len(cfg.Rates))
	for _, lvl := range cfg.Levels {
		for _, rate := range cfg.Rates {
			points = append(points, sweepPoint{lvl, rate})
		}
	}
	perRun, err := parallel.Map(len(points), func(i int) (map[string][]profiling.Sample, error) {
		lvl, rate := points[i].lvl, points[i].rate
		run := cluster.New(cl.NumHosts(), cl.Hosts()[0].Spec)
		for hi, h := range cl.Hosts() {
			run.Hosts()[hi].Spec = h.Spec
			if err := run.SetBackground(hi, lvl); err != nil {
				return nil, err
			}
		}
		for _, ms := range c.App.Microservices() {
			spec := c.App.Containers[ms]
			for k := 0; k < cfg.ContainersPerMS; k++ {
				hostID := (len(run.Containers()) + k) % run.NumHosts()
				if _, err := run.Place(spec, hostID); err != nil {
					return nil, fmt.Errorf("core: profiling placement: %w", err)
				}
			}
		}
		patterns := make(map[string]workload.Pattern)
		for _, g := range c.App.Graphs {
			patterns[g.Service] = workload.Static{Rate: rate}
		}
		simCfg := sim.Config{
			Seed:         cfg.Seed + uint64(i),
			Cluster:      run,
			Interference: c.Interference,
			Profiles:     c.App.Profiles,
			Graphs:       c.App.Graphs,
			Patterns:     patterns,
			DurationMin:  cfg.WindowMin + 0.5,
			WarmupMin:    0.5,
		}
		var coord *trace.Coordinator
		if cfg.FromTraces {
			coord = trace.NewCoordinator(c.Coordinator.SampleRate)
			simCfg.Observer = coord
			simCfg.SampleRate = coord.SampleRate
		}
		rt, err := sim.NewRuntime(simCfg)
		if err != nil {
			return nil, err
		}
		res := rt.Run()
		out := make(map[string][]profiling.Sample)
		if cfg.FromTraces {
			// The production path: Eq. 1 latencies and inverse-sampling
			// workload estimates from the Tracing Coordinator, joined
			// with the injected interference level (the OS metrics).
			aggs := coord.MinuteAggregates(func(string) int { return cfg.ContainersPerMS })
			for _, a := range aggs {
				// Minute 0 overlaps the warmup transient; drop it.
				if a.Minute == 0 || a.Calls == 0 || a.TailMs <= 0 {
					continue
				}
				out[a.Microservice] = append(out[a.Microservice], profiling.Sample{
					Workload: a.PerContainerCalls,
					TailMs:   a.TailMs,
					CPUUtil:  lvl.CPU,
					MemUtil:  lvl.Mem,
				})
			}
		} else {
			for ms, ss := range profiling.FromMinuteSamples(res.Samples) {
				out[ms] = append(out[ms], ss...)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	samples := make(map[string][]profiling.Sample)
	for _, runSamples := range perRun {
		for ms, ss := range runSamples {
			samples[ms] = append(samples[ms], ss...)
		}
	}
	// Profiling historically stomped the live cluster; keep the observable
	// post-state (no backgrounds, no containers) even though the sweep now
	// runs on clones.
	for _, h := range cl.Hosts() {
		cl.SetBackground(h.ID, workload.Interference{})
	}
	cl.Reset()

	models, failed := profiling.FitAll(samples, cfg.Fit)
	for ms, m := range models {
		c.Models[ms] = m
	}
	sort.Strings(failed)
	return failed, nil
}
