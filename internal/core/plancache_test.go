package core

import (
	"math"
	"testing"

	"erms/internal/metrics"
	"erms/internal/obs"
)

// TestControllerPlanCacheBitIdentical: a controller with the default
// template cache produces plans bit-identical to one without, window after
// window, and the cache actually serves hits after the first window.
func TestControllerPlanCacheBitIdentical(t *testing.T) {
	cached := hotelController(t)
	naive := hotelController(t, WithoutPlanTemplates())
	if cached.PlanCache == nil {
		t.Fatal("template cache should be on by default")
	}
	if naive.PlanCache != nil {
		t.Fatal("WithoutPlanTemplates should clear the cache")
	}
	for w := 0; w < 4; w++ {
		rates := hotelRates(4000 + 1500*float64(w))
		want, err := naive.Plan(rates)
		if err != nil {
			t.Fatalf("window %d naive: %v", w, err)
		}
		got, err := cached.Plan(rates)
		if err != nil {
			t.Fatalf("window %d cached: %v", w, err)
		}
		if math.Float64bits(want.ResourceUsage) != math.Float64bits(got.ResourceUsage) {
			t.Fatalf("window %d: usage diverged", w)
		}
		for ms, n := range want.Containers {
			if got.Containers[ms] != n {
				t.Fatalf("window %d: containers[%s] = %d, want %d", w, ms, got.Containers[ms], n)
			}
		}
		for svc, wa := range want.PerService {
			ga := got.PerService[svc]
			for ms, v := range wa.Targets {
				if math.Float64bits(ga.Targets[ms]) != math.Float64bits(v) {
					t.Fatalf("window %d: %s target[%s] diverged", w, svc, ms)
				}
			}
		}
	}
	st := cached.PlanCache.Stats()
	if st.Compiles == 0 || st.Hits == 0 {
		t.Fatalf("cache stats %+v: expected compiles then hits", st)
	}
	if st.Invalidations != 0 {
		t.Fatalf("cache stats %+v: unexpected invalidations", st)
	}
}

// TestControllerPlanCacheCounters: planning with observability mirrors the
// cumulative template-cache counters into erms.self.* gauges.
func TestControllerPlanCacheCounters(t *testing.T) {
	store := metrics.NewStore()
	rec := obs.New(store)
	c := hotelController(t, WithObservability(rec))
	for w := 0; w < 3; w++ {
		if _, err := c.Plan(hotelRates(5000)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.PlanCache.Stats()
	snap := rec.Counters()
	if got := snap[obs.CtrPlanTemplateHits]; got != float64(st.Hits) {
		t.Fatalf("hits counter = %v, cache says %d", got, st.Hits)
	}
	if got := snap[obs.CtrPlanTemplateCompiles]; got != float64(st.Compiles) {
		t.Fatalf("compiles counter = %v, cache says %d", got, st.Compiles)
	}
	if got := snap[obs.CtrPlanTemplateInvalidations]; got != float64(st.Invalidations) {
		t.Fatalf("invalidations counter = %v, cache says %d", got, st.Invalidations)
	}
	if st.Hits < 2 {
		t.Fatalf("expected at least 2 hits after 3 windows, got %+v", st)
	}
}
