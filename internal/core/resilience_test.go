package core

import (
	"errors"
	"strings"
	"testing"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/sim"
	"erms/internal/workload"
)

// tinyController builds a two-service controller on a small cluster so apply
// failures are cheap to provoke.
func tinyController(t *testing.T, hosts int, spec cluster.HostSpec) *Controller {
	t.Helper()
	app := &apps.App{
		Name:   "tiny",
		Graphs: []*graph.Graph{graph.New("s1", "A"), graph.New("s2", "B")},
		Profiles: map[string]sim.ServiceProfile{
			"A": {BaseMs: 2, CV: 0.5}, "B": {BaseMs: 2, CV: 0.5},
		},
		SLAs: map[string]workload.SLA{
			"s1": workload.P95SLA("s1", 100), "s2": workload.P95SLA("s2", 100),
		},
		Containers: map[string]cluster.ContainerSpec{
			"A": cluster.PaperContainer("A"), "B": cluster.PaperContainer("B"),
		},
	}
	c, err := New(app, kube.New(cluster.New(hosts, spec), nil))
	if err != nil {
		t.Fatal(err)
	}
	c.UseAnalyticModels()
	return c
}

func TestApplyRollsBackOnMidApplyFailure(t *testing.T) {
	// One host, CPU-bound at 10 containers of 0.1 core.
	c := tinyController(t, 1, cluster.HostSpec{Cores: 1, MemGB: 4})
	if err := c.Apply(&multiplex.Plan{Containers: map[string]int{"A": 2, "B": 2}}); err != nil {
		t.Fatal(err)
	}

	// A scales to 3 fine; B cannot reach 20 — the whole apply must roll back.
	err := c.Apply(&multiplex.Plan{Containers: map[string]int{"A": 3, "B": 20}})
	if err == nil {
		t.Fatal("over-capacity apply accepted")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("error %q should report the rollback", err)
	}
	if got := c.Orch.Replicas("A"); got != 2 {
		t.Fatalf("A replicas after rollback = %d, want 2", got)
	}
	if got := c.Orch.Replicas("B"); got != 2 {
		t.Fatalf("B replicas after rollback = %d, want 2", got)
	}
	if got := c.Orch.Cluster().NumContainers(); got != 4 {
		t.Fatalf("containers after rollback = %d, want 4", got)
	}
}

func TestApplyRollbackDeletesCreatedDeployments(t *testing.T) {
	c := tinyController(t, 1, cluster.HostSpec{Cores: 1, MemGB: 4})
	if err := c.Apply(&multiplex.Plan{Containers: map[string]int{"A": 2}}); err != nil {
		t.Fatal(err)
	}
	// B did not exist before the failed apply; rollback must delete it, not
	// leave an empty deployment behind.
	if err := c.Apply(&multiplex.Plan{Containers: map[string]int{"A": 3, "B": 20}}); err == nil {
		t.Fatal("over-capacity apply accepted")
	}
	if _, ok := c.Orch.Deployment("B"); ok {
		t.Fatal("rollback left the created deployment behind")
	}
	if got := c.Orch.Replicas("A"); got != 2 {
		t.Fatalf("A replicas after rollback = %d, want 2", got)
	}
}

// TestHysteresisApplyFailureLeavesPlanUntouched is the regression test for
// the applyWithHysteresis bug: the adjusted counts used to be committed into
// plan.Containers before Apply ran, so a mid-apply failure left the plan
// claiming counts the cluster never reached.
func TestHysteresisApplyFailureLeavesPlanUntouched(t *testing.T) {
	c := tinyController(t, 1, cluster.HostSpec{Cores: 1, MemGB: 4})
	if err := c.Apply(&multiplex.Plan{Containers: map[string]int{"A": 2, "B": 2}}); err != nil {
		t.Fatal(err)
	}
	r := NewReconciler(c)
	plan := &multiplex.Plan{Containers: map[string]int{"A": 30, "B": 2}}
	up, down, err := r.applyWithHysteresis(plan)
	if err == nil {
		t.Fatal("over-capacity hysteresis apply accepted")
	}
	if up != 0 || down != 0 {
		t.Fatalf("failed apply reported scaling: up=%d down=%d", up, down)
	}
	if plan.Containers["A"] != 30 || plan.Containers["B"] != 2 {
		t.Fatalf("failed apply mutated the plan: %v", plan.Containers)
	}
	if c.Orch.Replicas("A") != 2 || c.Orch.Replicas("B") != 2 {
		t.Fatalf("failed apply mutated the deployment: A=%d B=%d",
			c.Orch.Replicas("A"), c.Orch.Replicas("B"))
	}
}

// fakeChaos is a programmable ChaosHook for loop tests.
type fakeChaos struct {
	planFails  int
	applyFails int
	failures   []sim.Failure
	gap        bool
}

func (f *fakeChaos) OpError(_ int, op string, attempt int) error {
	if op == "plan" && attempt < f.planFails {
		return errors.New("injected plan fault")
	}
	if op == "apply" && attempt < f.applyFails {
		return errors.New("injected apply fault")
	}
	return nil
}
func (f *fakeChaos) WindowFailures(int) []sim.Failure { return f.failures }
func (f *fakeChaos) ObservabilityGap(int) bool        { return f.gap }

func TestStepSurvivesTransientFaults(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	// Two plan faults and one apply fault: within the default retry budget.
	r.Chaos = &fakeChaos{planFails: 2, applyFails: 1}
	rep, err := r.Step(hotelRates(8_000), 1)
	if err != nil {
		t.Fatalf("resilient step aborted on transient faults: %v", err)
	}
	if rep.Retries != 3 {
		t.Fatalf("retries = %d, want 3", rep.Retries)
	}
	if rep.BackoffMin <= 0 {
		t.Fatal("no backoff recorded")
	}
	if rep.Degraded || rep.Outage {
		t.Fatalf("transient faults within budget marked the window: %+v", rep)
	}
	if rep.Containers == 0 {
		t.Fatal("no containers deployed")
	}
}

func TestStepDegradesToLastPlanWhenPlanningFails(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	hook := &fakeChaos{}
	r.Chaos = hook
	if _, err := r.Step(hotelRates(8_000), 1); err != nil {
		t.Fatal(err)
	}
	want := r.LastPlan().TotalContainers()

	// Planning now fails past the retry budget; the loop reuses the last
	// good plan instead of aborting.
	hook.planFails = 100
	rep, err := r.Step(hotelRates(9_000), 2)
	if err != nil {
		t.Fatalf("degraded step aborted: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("window not marked degraded")
	}
	if rep.Containers != want {
		t.Fatalf("degraded window deployed %d containers, want last plan's %d", rep.Containers, want)
	}
}

func TestStepErrorsWithoutFallbackPlan(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.Chaos = &fakeChaos{planFails: 100}
	// First window, nothing to fall back on: a hard error is correct.
	if _, err := r.Step(hotelRates(8_000), 1); err == nil {
		t.Fatal("step with no fallback plan should error")
	}
}

func TestNaiveStepAbortsOnFirstFault(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c).Naive()
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	hook := &fakeChaos{}
	r.Chaos = hook
	if _, err := r.Step(hotelRates(8_000), 1); err != nil {
		t.Fatal(err)
	}
	hook.planFails = 1
	if _, err := r.Step(hotelRates(8_000), 2); err == nil {
		t.Fatal("naive step should abort on a single transient fault")
	}
}

func TestStepRepairsContainersLostToFailedHosts(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	if _, err := r.Step(hotelRates(8_000), 1); err != nil {
		t.Fatal(err)
	}
	// Kill a host that holds containers.
	var victim int = -1
	for _, h := range c.Orch.Cluster().Hosts() {
		if len(h.Containers()) > 0 {
			victim = h.ID
			break
		}
	}
	if victim < 0 {
		t.Fatal("no host with containers")
	}
	lost := len(c.Orch.Cluster().Host(victim).Containers())
	if err := c.Orch.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Step(hotelRates(8_000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired < lost {
		t.Fatalf("repaired %d containers, want at least the %d lost", rep.Repaired, lost)
	}
	if got := len(c.Orch.Cluster().Host(victim).Containers()); got != 0 {
		t.Fatalf("repair placed %d containers on the down host", got)
	}
}

func TestStepObservabilityGapStillMeasures(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	r.Chaos = &fakeChaos{gap: true}
	rep, err := r.Step(hotelRates(8_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObsGap {
		t.Fatal("window not marked as an observability gap")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("gap window lost its end-to-end measurements")
	}
}
