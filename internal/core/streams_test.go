package core

import (
	"reflect"
	"testing"

	"erms/internal/sim"
	"erms/internal/workload"
)

// TestReconcilerStreamsForNilIsByteIdentical pins that installing a
// StreamsFor hook that returns nil leaves the loop byte-for-byte identical
// to a reconciler without the hook — the operator can always wire the hook
// and let the scenario decide.
func TestReconcilerStreamsForNilIsByteIdentical(t *testing.T) {
	rates := map[string]float64{}
	for _, svc := range hotelController(t).App.Services() {
		rates[svc] = 12_000
	}

	a := NewReconciler(hotelController(t))
	a.WindowMin = 1.0
	b := NewReconciler(hotelController(t))
	b.WindowMin = 1.0
	b.StreamsFor = func(int) []sim.Stream { return nil }

	for w := 0; w < 3; w++ {
		seed := uint64(41 + w)
		ra, err := a.Step(rates, seed)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step(rates, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("window %d diverged with nil-returning StreamsFor:\n a %+v\n b %+v", w, ra, rb)
		}
	}
}

// TestReconcilerStreamsForDrivesEvaluation pins that hook-supplied cohort
// streams reach the window evaluation: the report carries outcomes and the
// hook sees the loop's window index.
func TestReconcilerStreamsForDrivesEvaluation(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 1.0

	var asked []int
	r.StreamsFor = func(w int) []sim.Stream {
		asked = append(asked, w)
		return []sim.Stream{{
			Cohort:  "web",
			Service: "search",
			Tier:    workload.TierStandard,
			Pattern: workload.Static{Rate: 9_000},
		}}
	}
	plain := NewReconciler(hotelController(t))
	plain.WindowMin = 1.0

	rates := map[string]float64{}
	for _, svc := range c.App.Services() {
		rates[svc] = 9_000
	}
	for w := 0; w < 2; w++ {
		rep, err := r.Step(rates, uint64(7+w))
		if err != nil {
			t.Fatal(err)
		}
		base, err := plain.Step(rates, uint64(7+w))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TailLatency["search"] <= 0 {
			t.Fatalf("window %d: stream-driven evaluation produced no search latency: %+v", w, rep.TailLatency)
		}
		// With traffic confined to the one declared cohort, the window
		// outcome must differ from the rates-only evaluation.
		if reflect.DeepEqual(rep.TailLatency, base.TailLatency) {
			t.Fatalf("window %d: stream evaluation identical to rates-only evaluation", w)
		}
	}
	if !reflect.DeepEqual(asked, []int{0, 1}) {
		t.Fatalf("StreamsFor saw windows %v, want [0 1]", asked)
	}
}
