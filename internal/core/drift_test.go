package core

import (
	"reflect"
	"testing"

	"erms/internal/drift"
	"erms/internal/obs"
)

// TestDriftDisabledPathIdentical: without WithDriftDetection — and with a
// detector whose threshold can never fire — the reconciler's window reports
// match the frozen controller exactly. Drift detection off (or silent) is a
// pure observer.
func TestDriftDisabledPathIdentical(t *testing.T) {
	run := func(opts ...Option) []WindowReport {
		r := NewReconciler(hotelController(t, opts...))
		r.WindowMin = 0.8
		var out []WindowReport
		for w := 0; w < 3; w++ {
			rep, err := r.Step(hotelRates(10_000+2_000*float64(w)), uint64(100+w))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *rep)
		}
		return out
	}
	frozen := run()
	silent := run(WithDriftDetection(drift.Config{Threshold: 1e9}))
	for w := range frozen {
		if silent[w].ModelSwaps != 0 {
			t.Fatalf("window %d: silent detector swapped models", w)
		}
		if !reflect.DeepEqual(frozen[w], silent[w]) {
			t.Fatalf("window %d reports diverge:\nfrozen: %+v\nsilent: %+v", w, frozen[w], silent[w])
		}
	}
}

// TestDriftSwapInstallsModelAndInvalidatesTemplate: doubling a shared
// microservice's true service time mid-run (the frozen analytic models keep
// their stale copy) must trigger a swap that (a) replaces the model in
// c.Models, (b) shows up as exactly that service's template invalidation in
// the plan cache, and (c) raises the planner's latency prediction for the
// drifted microservice.
func TestDriftSwapInstallsModelAndInvalidatesTemplate(t *testing.T) {
	c := hotelController(t, WithDriftDetection(drift.Config{Threshold: 0.5, Consecutive: 2}))
	rec := obs.New(c.Metrics)
	c.Obs = rec
	r := NewReconciler(c)
	// Live samples are per-minute aggregates recorded after warmup, so a
	// window must span at least two whole minutes to carry any signal.
	r.WindowMin = 2.0
	r.WarmupMin = 0.5

	for w := 0; w < 2; w++ {
		if _, err := r.Step(hotelRates(10_000), uint64(w)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Drift.Stats(); st.Swaps != 0 {
		t.Fatalf("swaps before injection: %+v", st)
	}
	before := c.Models["profile"]
	inv0 := c.PlanCache.Stats().Invalidations

	// Chaos injection: the dependency behind "profile" got 4× slower. The
	// simulator sees it immediately; the frozen models do not.
	p := c.App.Profiles["profile"]
	p.BaseMs *= 4
	c.App.Profiles["profile"] = p

	swapped := 0
	for w := 2; w < 7 && swapped == 0; w++ {
		rep, err := r.Step(hotelRates(10_000), uint64(w))
		if err != nil {
			t.Fatal(err)
		}
		swapped += rep.ModelSwaps
	}
	if swapped == 0 {
		t.Fatal("no model swap within 5 windows of a 4x service-time shift")
	}
	after := c.Models["profile"]
	if after == before {
		t.Fatal("model not replaced in c.Models")
	}
	if pNew, pOld := after.Predict(500, 0.3, 0.3), before.Predict(500, 0.3, 0.3); pNew <= pOld {
		t.Fatalf("swapped model predicts %.2fms <= frozen %.2fms", pNew, pOld)
	}

	// The swap is a template-cache invalidation event; planning the next
	// window recompiles only the stale template.
	if _, err := r.Step(hotelRates(10_000), 9); err != nil {
		t.Fatal(err)
	}
	if inv := c.PlanCache.Stats().Invalidations; inv <= inv0 {
		t.Fatalf("invalidations %d -> %d: swap did not invalidate the template", inv0, inv)
	}

	// Counters made it to the observability surface.
	if got := rec.Value(obs.CtrModelSwaps); got < 1 {
		t.Fatalf("%s = %v, want >= 1", obs.CtrModelSwaps, got)
	}
	if rec.Value(obs.CtrDriftDetections) < 1 || rec.Value(obs.CtrDriftWindows) < 1 {
		t.Fatal("drift detection/window counters missing")
	}
	if got := rec.Value(obs.GaugeDriftScore); got <= 0.5 {
		t.Fatalf("max drift score %v, want > threshold", got)
	}
}

// TestObserveDriftNil: the hook is a no-op without a detector or a result.
func TestObserveDriftNil(t *testing.T) {
	c := hotelController(t)
	if sw := c.ObserveDrift(nil); sw != nil {
		t.Fatal("nil result produced swaps")
	}
	cd := hotelController(t, WithDriftDetection(drift.Config{}))
	if sw := cd.ObserveDrift(nil); sw != nil {
		t.Fatal("nil result produced swaps on drift-enabled controller")
	}
}
