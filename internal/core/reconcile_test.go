package core

import (
	"testing"

	"erms/internal/workload"
)

func TestReconcilerTracksWorkload(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 1.0

	patterns := map[string]workload.Pattern{}
	// Ramp: the load triples over the run.
	trace := workload.Trace{Rates: []float64{10_000, 20_000, 30_000}, StepMin: 1}
	for _, svc := range c.App.Services() {
		patterns[svc] = trace
	}
	reports, err := r.Run(patterns, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[2].Containers <= reports[0].Containers {
		t.Fatalf("containers did not grow with load: %d -> %d",
			reports[0].Containers, reports[2].Containers)
	}
	for _, rep := range reports {
		for svc, v := range rep.Violations {
			if v > 0.05 {
				t.Fatalf("window %d: %s violates %.1f%%", rep.Window, svc, v*100)
			}
		}
	}
	if len(r.History()) != 3 {
		t.Fatal("history incomplete")
	}
}

func TestReconcilerHysteresisHoldsSmallDownscales(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.8
	r.DownscaleSlack = 0.9 // hold almost any scale-down

	if _, err := r.Step(hotelRates(30_000), 1); err != nil {
		t.Fatal(err)
	}
	high := c.Orch.TotalReplicas()
	rep, err := r.Step(hotelRates(8_000), 2)
	if err != nil {
		t.Fatal(err)
	}
	// With the huge slack nothing shrinks.
	if c.Orch.TotalReplicas() < high {
		t.Fatalf("hysteresis failed: %d -> %d", high, c.Orch.TotalReplicas())
	}
	if rep.ScaledDown != 0 {
		t.Fatalf("scaledDown = %d with full slack", rep.ScaledDown)
	}

	// With zero slack the deployment shrinks.
	r2 := NewReconciler(hotelController(t))
	r2.WindowMin = 0.8
	r2.DownscaleSlack = 0
	if _, err := r2.Step(hotelRates(30_000), 3); err != nil {
		t.Fatal(err)
	}
	high2 := r2.C.Orch.TotalReplicas()
	if _, err := r2.Step(hotelRates(8_000), 4); err != nil {
		t.Fatal(err)
	}
	if r2.C.Orch.TotalReplicas() >= high2 {
		t.Fatalf("no-slack reconciler did not shrink: %d -> %d", high2, r2.C.Orch.TotalReplicas())
	}
}

func TestReconcilerErrors(t *testing.T) {
	r := &Reconciler{}
	if _, err := r.Step(nil, 1); err == nil {
		t.Fatal("nil controller accepted")
	}
	c := hotelController(t)
	r2 := NewReconciler(c)
	if _, err := r2.Run(map[string]workload.Pattern{}, 2, 1); err == nil {
		t.Fatal("missing patterns accepted")
	}
	if _, err := r2.Run(map[string]workload.Pattern{"search": workload.Static{Rate: 1}}, 0, 1); err == nil {
		t.Fatal("zero windows accepted")
	}
}

func TestReconcilerRebalances(t *testing.T) {
	c := hotelController(t)
	// Skew the cluster: heavy batch load on half the hosts.
	for i := 0; i < 20; i += 2 {
		c.Orch.Cluster().SetBackground(i, workload.Interference{CPU: 0.6, Mem: 0.6})
	}
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.RebalanceMoves = 20
	if _, err := r.Step(hotelRates(20_000), 9); err != nil {
		t.Fatal(err)
	}
	with := c.Orch.Cluster().Imbalance()

	c2 := hotelController(t)
	for i := 0; i < 20; i += 2 {
		c2.Orch.Cluster().SetBackground(i, workload.Interference{CPU: 0.6, Mem: 0.6})
	}
	r2 := NewReconciler(c2)
	r2.WindowMin = 0.6
	r2.RebalanceMoves = 0
	if _, err := r2.Step(hotelRates(20_000), 9); err != nil {
		t.Fatal(err)
	}
	without := c2.Orch.Cluster().Imbalance()
	if with > without*1.0001 {
		t.Fatalf("rebalancing made imbalance worse: %v vs %v", with, without)
	}
}
