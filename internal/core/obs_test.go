package core

import (
	"testing"

	"erms/internal/chaos"
	"erms/internal/obs"
)

// obsReconciler builds a hotel reconciler with a recorder attached to the
// controller before the reconciler is created, mirroring how ermsctl and
// the erms facade wire self-observability.
func obsReconciler(t *testing.T) (*Reconciler, *Controller, *obs.Recorder) {
	t.Helper()
	c := hotelController(t)
	rec := obs.New(c.Metrics)
	c.Obs = rec
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	return r, c, rec
}

func TestStepPopulatesPhaseTimings(t *testing.T) {
	r, _, rec := obsReconciler(t)
	rep, err := r.Step(hotelRates(8_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{obs.PhaseRepair, obs.PhasePlan, obs.PhaseApply, obs.PhaseEvaluate} {
		d, ok := rep.PhaseMs[phase]
		if !ok {
			t.Fatalf("PhaseMs missing %q: %v", phase, rep.PhaseMs)
		}
		if d < 0 {
			t.Fatalf("phase %q duration %v < 0", phase, d)
		}
	}
	// Evaluation runs a real simulation; it cannot take literally zero time.
	if rep.PhaseMs[obs.PhaseEvaluate] <= 0 {
		t.Fatalf("evaluate phase = %v ms, want > 0", rep.PhaseMs[obs.PhaseEvaluate])
	}
	// The history keeps the same report.
	hist := r.History()
	if len(hist) != 1 || hist[0].PhaseMs[obs.PhaseEvaluate] != rep.PhaseMs[obs.PhaseEvaluate] {
		t.Fatalf("history does not carry phase timings: %+v", hist)
	}
	if got := rec.Value(obs.CtrWindows); got != 1 {
		t.Fatalf("windows counter = %v, want 1", got)
	}
	if got := rec.Value(obs.CtrPlans); got < 1 {
		t.Fatalf("plans counter = %v, want >= 1", got)
	}
	if got := rec.Value(obs.CtrSimEvents); got <= 0 {
		t.Fatalf("sim events counter = %v, want > 0", got)
	}
	if rec.Value(obs.GaugeContainers) != float64(rep.Containers) {
		t.Fatalf("containers gauge = %v, want %d", rec.Value(obs.GaugeContainers), rep.Containers)
	}
	// One span per phase landed in the ring for window 0.
	phases := make(map[string]bool)
	for _, sp := range rec.Spans() {
		if sp.Window == 0 {
			phases[sp.Name] = true
		}
	}
	for _, phase := range []string{obs.PhaseRepair, obs.PhasePlan, obs.PhaseApply, obs.PhaseEvaluate} {
		if !phases[phase] {
			t.Fatalf("span ring missing phase %q: %v", phase, phases)
		}
	}
}

func TestStepWithoutRecorderLeavesPhaseMsNil(t *testing.T) {
	c := hotelController(t)
	r := NewReconciler(c)
	r.WindowMin = 0.6
	r.WarmupMin = 0.2
	rep, err := r.Step(hotelRates(8_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PhaseMs != nil {
		t.Fatalf("PhaseMs without a recorder = %v, want nil", rep.PhaseMs)
	}
}

func TestStepRecordsRetriesAndDegradedWindows(t *testing.T) {
	r, _, rec := obsReconciler(t)
	// Window 0: two plan faults and one apply fault — retried, not degraded.
	r.Chaos = &fakeChaos{planFails: 2, applyFails: 1}
	if _, err := r.Step(hotelRates(8_000), 1); err != nil {
		t.Fatal(err)
	}
	if got := rec.Value(obs.CtrRetries); got != 3 {
		t.Fatalf("retries counter = %v, want 3", got)
	}
	if got := rec.Value(obs.CtrDegradedWindows); got != 0 {
		t.Fatalf("degraded counter after clean window = %v, want 0", got)
	}
	// Window 1: planning fails past the retry budget — degraded, running on
	// the last good plan.
	r.Chaos = &fakeChaos{planFails: 100}
	rep, err := r.Step(hotelRates(8_000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatalf("window not degraded: %+v", rep)
	}
	if got := rec.Value(obs.CtrDegradedWindows); got != 1 {
		t.Fatalf("degraded counter = %v, want 1", got)
	}
	if got := rec.Value(obs.CtrWindows); got != 2 {
		t.Fatalf("windows counter = %v, want 2", got)
	}
	// The degraded window still timed its phases.
	if _, ok := rep.PhaseMs[obs.PhaseEvaluate]; !ok {
		t.Fatalf("degraded window lost phase timings: %v", rep.PhaseMs)
	}
}

// TestChaosRunExportsSelfTelemetry drives the reconciler under a real
// chaos.Injector schedule — the full ermsctl -chaos wiring — and checks the
// erms.self.* series land in the controller's metrics store with the
// per-window values the history reports.
func TestChaosRunExportsSelfTelemetry(t *testing.T) {
	r, c, rec := obsReconciler(t)
	const windows = 4
	cfg := chaos.Default(7, windows, r.WindowMin, c.Orch.Cluster().NumHosts(), c.App.Microservices())
	sched, err := chaos.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(sched, c.Orch)
	inj.SetRecorder(rec)
	r.Chaos = inj

	for w := 0; w < windows; w++ {
		if _, err := inj.BeginWindow(w); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Step(hotelRates(8_000), 7+uint64(w)*101); err != nil {
			t.Fatal(err)
		}
		if err := inj.EndWindow(w); err != nil {
			t.Fatal(err)
		}
	}

	hist := r.History()
	if len(hist) != windows {
		t.Fatalf("history = %d windows, want %d", len(hist), windows)
	}
	var retries, degraded, repaired int
	for _, rep := range hist {
		retries += rep.Retries
		repaired += rep.Repaired
		if rep.Degraded {
			degraded++
		}
		if _, ok := rep.PhaseMs[obs.PhasePlan]; !ok && !rep.Outage {
			t.Fatalf("window %d missing plan phase timing: %v", rep.Window, rep.PhaseMs)
		}
	}
	if got := rec.Value(obs.CtrWindows); got != windows {
		t.Fatalf("windows counter = %v, want %d", got, windows)
	}
	if got := rec.Value(obs.CtrRetries); got != float64(retries) {
		t.Fatalf("retries counter = %v, history sum = %d", got, retries)
	}
	if got := rec.Value(obs.CtrDegradedWindows); got != float64(degraded) {
		t.Fatalf("degraded counter = %v, history sum = %d", got, degraded)
	}
	if got := rec.Value(obs.CtrRepaired); got != float64(repaired) {
		t.Fatalf("repaired counter = %v, history sum = %d", got, repaired)
	}
	// The default schedule injects at least one fault; the injector counters
	// must have seen them.
	chaosSeen := rec.Value(obs.CtrChaosHostsFailed) + rec.Value(obs.CtrChaosSpikes) +
		rec.Value(obs.CtrChaosCrashes) + rec.Value(obs.CtrChaosOpFaults) +
		rec.Value(obs.CtrChaosObsGaps)
	if chaosSeen == 0 {
		t.Fatal("chaos run recorded no chaos events")
	}

	// FlushWindow mirrored the counters and phase spans into the store: one
	// point per window, timestamped at simulated window end.
	pts := c.Metrics.Range(obs.CtrWindows, 0, float64(windows+1)*r.WindowMin)
	if len(pts) != windows {
		t.Fatalf("store has %d points for %s, want %d", len(pts), obs.CtrWindows, windows)
	}
	if last := pts[len(pts)-1]; last.V != windows {
		t.Fatalf("cumulative windows series ends at %v, want %d", last.V, windows)
	}
	planKey := "erms.self.phase_ms{phase=\"plan\"}"
	if got := len(c.Metrics.Range(planKey, 0, float64(windows+1)*r.WindowMin)); got == 0 {
		t.Fatalf("store has no %s points", planKey)
	}
}
