package core

import (
	"errors"
	"fmt"

	"erms/internal/multiplex"
	"erms/internal/provision"
	"erms/internal/workload"
)

// Reconciler runs the periodic control loop of Fig. 6: every window it
// observes the workload, re-runs Online Scaling, reconciles the deployment
// (with scale-down hysteresis to avoid container churn), and measures the
// window's real behaviour in the simulator.
type Reconciler struct {
	C *Controller
	// WindowMin is the scaling interval in simulated minutes. Default 1.5.
	WindowMin float64
	// WarmupMin is excluded from each window's statistics. Default 0.3.
	WarmupMin float64
	// DownscaleSlack delays scale-down: a microservice is only shrunk when
	// the new plan is below the current count by more than this fraction.
	// Scale-ups always apply immediately (SLA safety is asymmetric).
	// Default 0.15.
	DownscaleSlack float64
	// RebalanceMoves bounds the background container migrations the
	// Resource Provisioning module performs each window to smooth
	// utilization imbalance (§5.4). 0 disables rebalancing.
	RebalanceMoves int

	history []WindowReport
}

// WindowReport summarizes one reconciliation window.
type WindowReport struct {
	Window      int
	Rates       map[string]float64
	Containers  int
	Violations  map[string]float64
	TailLatency map[string]float64
	// ScaledUp / ScaledDown count the microservices that changed.
	ScaledUp   int
	ScaledDown int
}

// NewReconciler wraps a controller with default loop parameters.
func NewReconciler(c *Controller) *Reconciler {
	return &Reconciler{C: c, WindowMin: 1.5, WarmupMin: 0.3, DownscaleSlack: 0.15}
}

// History returns the reports of all completed windows.
func (r *Reconciler) History() []WindowReport {
	out := make([]WindowReport, len(r.history))
	copy(out, r.history)
	return out
}

// applyWithHysteresis merges the new plan with the current deployment:
// scale-ups apply immediately, scale-downs only past the slack.
func (r *Reconciler) applyWithHysteresis(plan *multiplex.Plan) (up, down int, err error) {
	for ms, want := range plan.Containers {
		cur := r.C.Orch.Replicas(ms)
		switch {
		case want > cur:
			up++
		case want < cur:
			if float64(cur-want) <= r.DownscaleSlack*float64(cur) {
				plan.Containers[ms] = cur // hold: inside the slack band
				continue
			}
			down++
		}
	}
	return up, down, r.C.Apply(plan)
}

// Step runs one window at the given observed rates.
func (r *Reconciler) Step(rates map[string]float64, seed uint64) (*WindowReport, error) {
	if r.C == nil {
		return nil, errors.New("core: reconciler without controller")
	}
	plan, err := r.C.Plan(rates)
	if err != nil {
		return nil, fmt.Errorf("core: reconcile plan: %w", err)
	}
	up, down, err := r.applyWithHysteresis(plan)
	if err != nil {
		return nil, err
	}
	if r.RebalanceMoves > 0 {
		provision.Rebalance(r.C.Orch.Cluster(), r.RebalanceMoves)
	}
	res, err := r.C.EvaluatePlan(plan, rates, r.WindowMin, r.WarmupMin, seed)
	if err != nil {
		return nil, err
	}
	report := WindowReport{
		Window:      len(r.history),
		Rates:       rates,
		Containers:  plan.TotalContainers(),
		Violations:  res.Violations,
		TailLatency: res.TailLatency,
		ScaledUp:    up,
		ScaledDown:  down,
	}
	r.history = append(r.history, report)
	return &report, nil
}

// Run drives the loop for the given number of windows, sampling each
// service's pattern at the window start — the §6.3.2 dynamic-workload
// experiment as a reusable component.
func (r *Reconciler) Run(patterns map[string]workload.Pattern, windows int, seed uint64) ([]WindowReport, error) {
	if windows <= 0 {
		return nil, errors.New("core: need at least one window")
	}
	for _, g := range r.C.App.Graphs {
		if _, ok := patterns[g.Service]; !ok {
			return nil, fmt.Errorf("core: no pattern for service %s", g.Service)
		}
	}
	start := len(r.history)
	for w := 0; w < windows; w++ {
		t := float64(w) * r.WindowMin
		rates := make(map[string]float64, len(patterns))
		for svc, p := range patterns {
			rate := p.RateAt(t)
			if rate <= 0 {
				rate = 1
			}
			rates[svc] = rate
		}
		if _, err := r.Step(rates, seed+uint64(w)); err != nil {
			return nil, err
		}
	}
	return r.History()[start:], nil
}
