package core

import (
	"errors"
	"fmt"

	"erms/internal/multiplex"
	"erms/internal/obs"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// Reconciler runs the periodic control loop of Fig. 6: every window it
// observes the workload, re-runs Online Scaling, reconciles the deployment
// (with scale-down hysteresis to avoid container churn), and measures the
// window's real behaviour in the simulator.
//
// The loop is resilient by default: replacement scheduling re-places
// containers lost to failed hosts before planning, transient plan/apply
// failures are retried with deterministic exponential backoff, and a window
// whose planning fails outright falls back to the last good plan instead of
// aborting the run (degraded mode). Plan application is atomic-or-rollback
// (Controller.Apply), so a failed window never leaves the orchestrator
// halfway between two plans.
type Reconciler struct {
	C *Controller
	// WindowMin is the scaling interval in simulated minutes. Default 1.5.
	WindowMin float64
	// WarmupMin is excluded from each window's statistics. Default 0.3.
	WarmupMin float64
	// DownscaleSlack delays scale-down: a microservice is only shrunk when
	// the new plan is below the current count by more than this fraction.
	// Scale-ups always apply immediately (SLA safety is asymmetric).
	// Default 0.15.
	DownscaleSlack float64
	// RebalanceMoves bounds the background container migrations the
	// Resource Provisioning module performs each window to smooth
	// utilization imbalance (§5.4). 0 disables rebalancing.
	RebalanceMoves int

	// MaxRetries bounds re-attempts of a failed plan or apply within one
	// window. 0 disables retrying (the naive loop). Default 2.
	MaxRetries int
	// BackoffMin is the base of the exponential backoff between retries in
	// simulated minutes: attempt k waits BackoffMin·2^k·(1+jitter), with
	// jitter drawn deterministically from the window's seed. The accumulated
	// delay is recorded in the WindowReport (the loop runs in simulated
	// time, so nothing sleeps). Default 0.05.
	BackoffMin float64
	// BackoffJitter scales the seed-driven jitter fraction. Default 0.5.
	BackoffJitter float64
	// ReuseLastPlan enables degraded mode: when planning (or applying) still
	// fails after MaxRetries, the window runs on the last successfully
	// applied plan instead of aborting. Default true.
	ReuseLastPlan bool
	// RepairLost enables replacement scheduling: before planning, containers
	// lost to failed hosts are re-placed up to each deployment's desired
	// replica count. Default true.
	RepairLost bool
	// Chaos, when non-nil, injects faults into the loop: transient
	// control-plane operation errors, per-window container/host outages for
	// the simulation, and observability gaps. Implemented by chaos.Injector.
	Chaos ChaosHook

	// StreamsFor, when non-nil, supplies per-window cohort streams for the
	// evaluation (spec-compiled scenarios carry tiers and per-cohort SLAs
	// the aggregate rate map cannot express). Nil keeps the legacy
	// rates-only evaluation byte-for-byte.
	StreamsFor func(window int) []sim.Stream

	// Obs is the self-observability recorder. When nil (the default) the
	// loop runs exactly as before — every instrumentation point is a
	// nil-receiver no-op with zero allocations. When set, each Step times
	// its phases (repair, plan, apply, rebalance, evaluate) as wall-clock
	// spans, populates WindowReport.PhaseMs, counts retries / degraded
	// windows / plan diffs under erms.self.*, and mirrors the counters into
	// the recorder's metrics store at the end of the window.
	// NewReconciler inherits the controller's recorder.
	Obs *obs.Recorder

	history  []WindowReport
	lastPlan *multiplex.Plan
}

// ChaosHook is the fault-injection surface the loop consults each window.
type ChaosHook interface {
	// OpError returns a transient error for the named control-plane
	// operation ("plan", "apply") at the given window and attempt, or nil.
	OpError(window int, op string, attempt int) error
	// WindowFailures returns the container/host outages to inject into the
	// window's simulation (times relative to the window start).
	WindowFailures(window int) []sim.Failure
	// ObservabilityGap reports whether the window's metrics and traces are
	// dropped before reaching the control plane.
	ObservabilityGap(window int) bool
}

// WindowReport summarizes one reconciliation window.
type WindowReport struct {
	Window      int
	Rates       map[string]float64
	Containers  int
	Violations  map[string]float64
	TailLatency map[string]float64
	// ErrorRate holds the per-service fraction of requests that failed
	// outright in the window's simulation (data-plane resilience enabled);
	// nil when the controller runs the infallible data plane.
	ErrorRate map[string]float64
	// Goodput is the aggregate rate of requests completed within their SLA,
	// requests per minute.
	Goodput float64
	// ScaledUp / ScaledDown count the microservices that changed.
	ScaledUp   int
	ScaledDown int
	// Repaired counts replacement containers placed for hosts lost to
	// failures before this window's planning.
	Repaired int
	// Retries counts failed plan/apply attempts that were retried.
	Retries int
	// ModelSwaps counts latency models the drift loop re-fitted and swapped
	// after this window's evaluation (0 unless the controller runs with
	// WithDriftDetection). A swap takes effect at the next window's plan.
	ModelSwaps int
	// BackoffMin is the simulated time spent backing off between retries.
	BackoffMin float64
	// Degraded marks a window that ran on the last good plan because
	// planning or applying failed past the retry budget.
	Degraded bool
	// Outage marks a window that could not be measured at all (for example,
	// a microservice with zero live containers); its Violations are pinned
	// to 1 for every service — requests had nowhere to go.
	Outage bool
	// ObsGap marks a window whose metric/trace samples were dropped by an
	// observability fault; end-to-end results are still measured.
	ObsGap bool
	// PhaseMs maps Step phase names (obs.PhaseRepair … obs.PhaseEvaluate)
	// to their wall-clock durations in milliseconds — the controller's own
	// decision latency. Populated only when the reconciler carries an
	// obs.Recorder; nil otherwise (and excluded from determinism
	// comparisons, since wall time is not seeded).
	PhaseMs map[string]float64 `json:"-"`
}

// NewReconciler wraps a controller with default loop parameters (resilience
// enabled). The controller's self-observability recorder, if any, is
// inherited.
func NewReconciler(c *Controller) *Reconciler {
	r := &Reconciler{
		C: c, WindowMin: 1.5, WarmupMin: 0.3, DownscaleSlack: 0.15,
		MaxRetries: 2, BackoffMin: 0.05, BackoffJitter: 0.5,
		ReuseLastPlan: true, RepairLost: true,
	}
	if c != nil {
		r.Obs = c.Obs
	}
	return r
}

// Naive disables every resilience mechanism (no retry, no degraded mode, no
// replacement scheduling) — the pre-fault-model loop that aborts on the
// first error, kept as the experimental baseline.
func (r *Reconciler) Naive() *Reconciler {
	r.MaxRetries = 0
	r.ReuseLastPlan = false
	r.RepairLost = false
	return r
}

// History returns the reports of all completed windows.
func (r *Reconciler) History() []WindowReport {
	out := make([]WindowReport, len(r.history))
	copy(out, r.history)
	return out
}

// LastPlan returns the most recently applied plan (nil before the first
// successful window).
func (r *Reconciler) LastPlan() *multiplex.Plan { return r.lastPlan }

// applyWithHysteresis merges the new plan with the current deployment:
// scale-ups apply immediately, scale-downs only past the slack. The adjusted
// counts are computed on the side and committed into plan.Containers only
// after the (atomic-or-rollback) apply succeeds, so a mid-apply failure
// leaves both the orchestrator and the plan exactly as they were.
func (r *Reconciler) applyWithHysteresis(plan *multiplex.Plan) (up, down int, err error) {
	adjusted := make(map[string]int, len(plan.Containers))
	for ms, want := range plan.Containers {
		cur := r.C.Orch.Replicas(ms)
		switch {
		case want > cur:
			up++
		case want < cur:
			if float64(cur-want) <= r.DownscaleSlack*float64(cur) {
				adjusted[ms] = cur // hold: inside the slack band
				continue
			}
			down++
		}
		adjusted[ms] = want
	}
	tmp := *plan
	tmp.Containers = adjusted
	if err := r.C.Apply(&tmp); err != nil {
		return 0, 0, err
	}
	plan.Containers = adjusted
	return up, down, nil
}

// opError consults the chaos hook for an injected control-plane fault.
func (r *Reconciler) opError(window int, op string, attempt int) error {
	if r.Chaos == nil {
		return nil
	}
	return r.Chaos.OpError(window, op, attempt)
}

// withRetry runs op up to 1+MaxRetries times, accumulating deterministic
// exponential backoff (in simulated minutes) into the report.
func (r *Reconciler) withRetry(window int, op string, rng *stats.RNG, rep *WindowReport, f func() error) error {
	for attempt := 0; ; attempt++ {
		err := r.opError(window, op, attempt)
		if err == nil {
			err = f()
		}
		if err == nil {
			return nil
		}
		if attempt >= r.MaxRetries {
			return err
		}
		rep.Retries++
		backoff := r.BackoffMin * float64(uint(1)<<uint(attempt))
		if r.BackoffJitter > 0 {
			backoff *= 1 + r.BackoffJitter*rng.Float64()
		}
		rep.BackoffMin += backoff
	}
}

// notePhase finishes a phase span and files its wall-clock duration into
// the report. With no recorder this is a single nil check (the span was
// inert and never read the clock).
func (r *Reconciler) notePhase(rep *WindowReport, name string, sp obs.Span) {
	if r.Obs == nil {
		return
	}
	if rep.PhaseMs == nil {
		rep.PhaseMs = make(map[string]float64, 5)
	}
	rep.PhaseMs[name] = sp.End()
}

// finishWindow publishes the completed window's self-telemetry: loop
// counters under erms.self.* and a FlushWindow mirroring them (plus the
// window's phase spans) into the recorder's metrics store at the window-end
// timestamp. No-op without a recorder.
func (r *Reconciler) finishWindow(rep *WindowReport) {
	o := r.Obs
	if o == nil {
		return
	}
	o.Inc(obs.CtrWindows)
	o.Add(obs.CtrRetries, float64(rep.Retries))
	o.Add(obs.CtrBackoffMin, rep.BackoffMin)
	o.Add(obs.CtrScaleUps, float64(rep.ScaledUp))
	o.Add(obs.CtrScaleDowns, float64(rep.ScaledDown))
	o.Add(obs.CtrRepaired, float64(rep.Repaired))
	o.Add(obs.CtrDegradedWindows, b2f(rep.Degraded))
	o.Add(obs.CtrOutageWindows, b2f(rep.Outage))
	o.Add(obs.CtrObsGapWindows, b2f(rep.ObsGap))
	o.Set(obs.GaugeContainers, float64(rep.Containers))
	o.FlushWindow(rep.Window, float64(rep.Window+1)*r.WindowMin)
}

// b2f materializes a boolean counter increment: adding 0 still creates the
// series, so a clean run exports erms.self.degraded_windows_total 0 rather
// than omitting it.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// clonePlan copies a plan deeply enough for the loop's mutation (the
// container counts); targets, ranks and per-service allocations are shared.
func clonePlan(p *multiplex.Plan) *multiplex.Plan {
	cp := *p
	cp.Containers = make(map[string]int, len(p.Containers))
	for ms, n := range p.Containers {
		cp.Containers[ms] = n
	}
	return &cp
}

// Step runs one window at the given observed rates. Configuration errors
// (nil controller, missing models on the first window with no fallback plan)
// still return an error; transient planning/apply failures do not abort the
// loop once a good plan exists.
func (r *Reconciler) Step(rates map[string]float64, seed uint64) (*WindowReport, error) {
	if r.C == nil {
		return nil, errors.New("core: reconciler without controller")
	}
	w := len(r.history)
	// Jitter stream: derived from the window seed only, so a run is
	// reproducible from its seeds regardless of wall-clock interleaving.
	rng := stats.NewRNG(seed ^ 0xc4ce5f8a5c8ff3eb)
	report := WindowReport{Window: w, Rates: rates}

	// Replacement scheduling: converge live containers back to desired
	// replicas before planning, so the planner sees the true capacity.
	if r.RepairLost {
		sp := r.Obs.StartSpan(obs.PhaseRepair, w)
		replaced, _ := r.C.Orch.Repair() // best-effort; a degraded cluster plans with what it has
		r.notePhase(&report, obs.PhaseRepair, sp)
		report.Repaired = replaced
	}

	spPlan := r.Obs.StartSpan(obs.PhasePlan, w)
	plan := (*multiplex.Plan)(nil)
	err := r.withRetry(w, "plan", rng, &report, func() error {
		p, e := r.C.Plan(rates)
		if e == nil {
			plan = p
		}
		return e
	})
	r.notePhase(&report, obs.PhasePlan, spPlan)
	if err != nil {
		if !r.ReuseLastPlan || r.lastPlan == nil {
			return nil, fmt.Errorf("core: reconcile plan: %w", err)
		}
		plan = clonePlan(r.lastPlan)
		report.Degraded = true
	}

	spApply := r.Obs.StartSpan(obs.PhaseApply, w)
	up, down := 0, 0
	err = r.withRetry(w, "apply", rng, &report, func() error {
		u, d, e := r.applyWithHysteresis(plan)
		if e == nil {
			up, down = u, d
		}
		return e
	})
	r.notePhase(&report, obs.PhaseApply, spApply)
	switch {
	case err == nil:
		report.ScaledUp, report.ScaledDown = up, down
		r.lastPlan = plan
	case r.ReuseLastPlan:
		// Apply failed past the retry budget (rollback already restored the
		// previous deployment). Run the window on whatever is deployed.
		report.Degraded = true
		if r.lastPlan != nil {
			plan = r.lastPlan
		}
	default:
		return nil, err
	}

	if r.RebalanceMoves > 0 {
		sp := r.Obs.StartSpan(obs.PhaseRebalance, w)
		provision.Rebalance(r.C.Orch.Cluster(), r.RebalanceMoves)
		r.notePhase(&report, obs.PhaseRebalance, sp)
	}

	var opts EvalOpts
	if r.StreamsFor != nil {
		opts.Streams = r.StreamsFor(w)
	}
	if r.Chaos != nil {
		opts.Failures = r.Chaos.WindowFailures(w)
		if r.Chaos.ObservabilityGap(w) {
			report.ObsGap = true
			for m := 0; m < int(r.WindowMin)+1; m++ {
				opts.DropMinutes = append(opts.DropMinutes, m)
			}
		}
	}
	spEval := r.Obs.StartSpan(obs.PhaseEvaluate, w)
	res, err := r.C.EvaluateDeployed(plan, rates, r.WindowMin, r.WarmupMin, seed, opts)
	r.notePhase(&report, obs.PhaseEvaluate, spEval)
	if err != nil {
		if !r.ReuseLastPlan {
			return nil, err
		}
		// The window cannot be measured — typically a microservice with zero
		// live containers on a degraded cluster. Count it as a full outage:
		// every service's requests had nowhere to go.
		report.Outage = true
		report.Violations = make(map[string]float64, len(r.C.App.Graphs))
		report.TailLatency = make(map[string]float64)
		for _, g := range r.C.App.Graphs {
			report.Violations[g.Service] = 1
		}
		report.Containers = r.C.Orch.Cluster().NumContainers()
		r.finishWindow(&report)
		r.history = append(r.history, report)
		return &report, nil
	}
	report.Containers = plan.TotalContainers()
	report.Violations = res.Violations
	report.TailLatency = res.TailLatency
	report.Goodput = res.Goodput
	if r.C.Resilience != nil {
		report.ErrorRate = res.ErrorRate
	}
	// Online drift loop: score this window's live samples against the
	// models the plan was computed from, re-fit and swap whatever drifted.
	// Swapped models take effect at the next window's plan; the template
	// cache treats each swap as a single-service invalidation.
	report.ModelSwaps = len(r.C.ObserveDrift(res.Sim))
	r.finishWindow(&report)
	r.history = append(r.history, report)
	return &report, nil
}

// Run drives the loop for the given number of windows, sampling each
// service's pattern at the window start — the §6.3.2 dynamic-workload
// experiment as a reusable component.
func (r *Reconciler) Run(patterns map[string]workload.Pattern, windows int, seed uint64) ([]WindowReport, error) {
	if windows <= 0 {
		return nil, errors.New("core: need at least one window")
	}
	for _, g := range r.C.App.Graphs {
		if _, ok := patterns[g.Service]; !ok {
			return nil, fmt.Errorf("core: no pattern for service %s", g.Service)
		}
	}
	start := len(r.history)
	for w := 0; w < windows; w++ {
		t := float64(w) * r.WindowMin
		rates := make(map[string]float64, len(patterns))
		for svc, p := range patterns {
			rate := p.RateAt(t)
			if rate <= 0 {
				rate = 1
			}
			rates[svc] = rate
		}
		if _, err := r.Step(rates, seed+uint64(w)); err != nil {
			return nil, err
		}
	}
	return r.History()[start:], nil
}
