package erms

import (
	"io"

	"erms/internal/persist"
)

// SaveApp writes an application topology (graphs, profiles, SLAs, container
// specs) as indented JSON, so custom applications can be authored and
// shared as data files.
func SaveApp(w io.Writer, app *App) error { return persist.SaveApp(w, app) }

// LoadApp reads an application saved by SaveApp (or hand-authored in the
// same format) and validates it.
func LoadApp(r io.Reader) (*App, error) { return persist.LoadApp(r) }

// SavePlan writes a scaling plan (containers, latency targets, priority
// ranks) as indented JSON for audit and replay.
func SavePlan(w io.Writer, plan *Plan) error { return persist.SavePlan(w, plan) }

// PlanSummary renders a deterministic human-readable plan summary.
func PlanSummary(plan *Plan) string { return persist.PlanSummary(plan) }
