// Quickstart: manage the Hotel Reservation application with Erms.
//
// The flow mirrors the paper's architecture (Fig. 6): build latency models,
// compute per-microservice latency targets and container counts for the
// observed workload (Online Scaling), deploy through the orchestrator with
// interference-aware provisioning, and validate the end-to-end SLAs by
// driving the deployment with simulated traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"erms"
)

func main() {
	app := erms.HotelReservation()
	sys, err := erms.NewSystem(app)
	if err != nil {
		log.Fatal(err)
	}
	sys.UseAnalyticModels()

	rates := map[string]float64{
		"search": 40_000, "recommend": 25_000, "reserve": 12_000, "login": 30_000,
	}
	plan, err := sys.Plan(rates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Erms plan for %s (%d services, shared: %v)\n\n",
		app.Name, len(app.Services()), app.Shared())
	var mss []string
	for ms := range plan.Containers {
		mss = append(mss, ms)
	}
	sort.Strings(mss)
	fmt.Printf("%-22s %10s\n", "microservice", "containers")
	for _, ms := range mss {
		fmt.Printf("%-22s %10d\n", ms, plan.Containers[ms])
	}
	fmt.Printf("%-22s %10d\n\n", "TOTAL", plan.TotalContainers())

	for ms, ranks := range plan.Ranks {
		fmt.Printf("priority at shared %q: %v\n", ms, ranks)
	}

	res, err := sys.Evaluate(plan, rates, 2, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated validation:")
	for _, svc := range app.Services() {
		fmt.Printf("  %-10s SLA %.0fms  P95 %.1fms  violations %.2f%%\n",
			svc, app.SLAs[svc].Threshold, res.TailLatency[svc], 100*res.Violations[svc])
	}
}
