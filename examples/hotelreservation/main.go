// Dynamic-workload management of the Hotel Reservation application (§6.3.2):
// an Alibaba-shaped diurnal trace drives the search service; every scaling
// window Erms re-plans from the observed workload, the deployment is
// reconciled, and a window of simulated traffic validates the SLA.
//
//	go run ./examples/hotelreservation
package main

import (
	"fmt"
	"log"

	"erms"
	"erms/internal/workload"
)

func main() {
	app := erms.HotelReservation()
	sys, err := erms.NewSystem(app)
	if err != nil {
		log.Fatal(err)
	}
	sys.UseAnalyticModels()

	// Background batch load on half the hosts — the colocation Erms'
	// provisioning module must steer around.
	for host := 0; host < 20; host += 2 {
		if err := sys.SetBackground(host, 0.45, 0.45); err != nil {
			log.Fatal(err)
		}
	}

	const windows = 8
	const windowMin = 1.5
	trace := workload.AlibabaLikeTrace(11, windows*2, 15_000, 80_000)

	fmt.Println("window  search-load  containers  worst-P95/SLA  violations")
	for w := 0; w < windows; w++ {
		searchRate := trace.RateAt(float64(w) * windowMin)
		rates := map[string]float64{
			"search":    searchRate,
			"recommend": searchRate * 0.4,
			"reserve":   searchRate * 0.15,
			"login":     searchRate * 0.5,
		}
		plan, err := sys.Plan(rates)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Evaluate(plan, rates, windowMin, 0.3, uint64(w)+1)
		if err != nil {
			log.Fatal(err)
		}
		var worstTail, worstViol float64
		for svc, tail := range res.TailLatency {
			if n := tail / app.SLAs[svc].Threshold; n > worstTail {
				worstTail = n
			}
			if v := res.Violations[svc]; v > worstViol {
				worstViol = v
			}
		}
		fmt.Printf("%6d  %11.0f  %10d  %12.2fx  %9.2f%%\n",
			w, searchRate, plan.TotalContainers(), worstTail, 100*worstViol)
	}
	fmt.Println("\nErms tracks the workload, scaling containers up at peaks and releasing them in troughs.")
}
