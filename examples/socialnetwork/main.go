// Social Network shared-microservice walkthrough: the §2.3 scenario at app
// scale. The three Social Network services all touch the post-storage chain;
// this example compares Erms' priority scheduling against plain FCFS sharing
// and per-service partitioning, reporting both planned containers and
// simulated tail latency.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"erms"
)

func main() {
	rates := map[string]float64{
		// The read services dominate, as in production social networks.
		"compose-post":  10_000,
		"home-timeline": 60_000,
		"user-timeline": 40_000,
	}

	fmt.Println("Social Network: 36 microservices, 3 services sharing the post-storage chain")
	fmt.Println()
	fmt.Printf("%-13s %12s %14s %16s\n", "scheme", "containers", "worst P95/SLA", "violations(max)")

	for _, scheme := range []erms.Scheme{erms.SchemeFCFS, erms.SchemeNonShared, erms.SchemePriority} {
		app := erms.SocialNetwork()
		sys, err := erms.NewSystem(app, erms.WithScheme(scheme))
		if err != nil {
			log.Fatal(err)
		}
		sys.UseAnalyticModels()
		plan, err := sys.Plan(rates)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Evaluate(plan, rates, 2, 0.5, 7)
		if err != nil {
			log.Fatal(err)
		}
		var worstTail, worstViol float64
		for svc, tail := range res.TailLatency {
			if norm := tail / app.SLAs[svc].Threshold; norm > worstTail {
				worstTail = norm
			}
			if v := res.Violations[svc]; v > worstViol {
				worstViol = v
			}
		}
		fmt.Printf("%-13s %12d %13.2fx %15.2f%%\n",
			scheme, plan.TotalContainers(), worstTail, 100*worstViol)
	}
	fmt.Println()
	fmt.Println("Priority scheduling meets the same SLAs with the fewest containers (§2.3, Theorem 1).")
}
