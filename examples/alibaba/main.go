// Trace-driven simulation at production scale (§6.5): generate a
// Taobao-shaped application (hundreds of services, heavy microservice
// sharing), plan it under Erms and under the baselines, and compare
// resource usage — the Fig. 16 experiment as a runnable program.
//
//	go run ./examples/alibaba [-services N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"erms"
	"erms/internal/stats"
)

func main() {
	services := flag.Int("services", 150, "number of online services to generate")
	flag.Parse()

	cfg := erms.AlibabaConfig{Seed: 7, Services: *services, MeanGraphSize: 50}
	app := erms.Alibaba(cfg)
	fmt.Printf("generated %q: %d services, %d microservices (%d shared)\n\n",
		app.Name, len(app.Services()), len(app.Microservices()), len(app.Shared()))

	// Production-like spread of request rates.
	r := stats.NewRNG(3)
	rates := make(map[string]float64, len(app.Services()))
	for _, svc := range app.Services() {
		rates[svc] = 1_000 * (1 + 9*r.Float64())
	}

	type outcome struct {
		name  string
		total int
	}
	var results []outcome
	for _, scheme := range []struct {
		name string
		s    erms.Scheme
	}{
		{"erms (priority)", erms.SchemePriority},
		{"erms-ltc (fcfs)", erms.SchemeFCFS},
		{"non-sharing", erms.SchemeNonShared},
	} {
		sys, err := erms.NewSystem(app, erms.WithScheme(scheme.s), erms.WithHosts(100))
		if err != nil {
			log.Fatal(err)
		}
		sys.UseAnalyticModels()
		plan, err := sys.Plan(rates)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{scheme.name, plan.TotalContainers()})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].total < results[j].total })
	best := float64(results[0].total)
	fmt.Printf("%-18s %12s %8s\n", "scheme", "containers", "vs best")
	for _, o := range results {
		fmt.Printf("%-18s %12d %7.2fx\n", o.name, o.total, float64(o.total)/best)
	}
	fmt.Println("\nGlobal coordination at shared microservices pays off most at production scale (Fig. 16).")
}
