package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"erms/internal/obs"
	"erms/internal/operator"
	"erms/internal/parallel"
	"erms/internal/spec"
)

// cmdOperate runs the long-running operator daemon: the spec file becomes
// the declared state (committed generation 1), and every subsequent push —
// a scripted -push entry or a POST /spec on the admin API — moves through
// the staged rollout state machine (canary → promote → soak → commit, with
// automatic rollback on any guardrail breach). With -windows 0 the daemon
// runs until interrupted, pacing simulated windows by -pace.
func cmdOperate(args []string) {
	fs := flag.NewFlagSet("ermsctl operate", flag.ExitOnError)
	specPath := fs.String("spec", "", "bootstrap spec file (required); becomes committed generation 1")
	windows := fs.Int("windows", 0, "operator windows to run, 0 = run until interrupted (paced by -pace)")
	pace := fs.Duration("pace", 2*time.Second, "wall-clock delay between windows when -windows is 0")
	canary := fs.Float64("canary", 0.25, "canary fraction: the slice of services, traffic, and hosts the rollout sandbox gets")
	canaryWin := fs.Int("canary-windows", 3, "consecutive clean canary windows that promote a candidate")
	soakWin := fs.Int("soak-windows", 2, "clean post-promotion windows that commit a candidate")
	maxViol := fs.Float64("max-violation", 0.05, "guardrail: max per-window SLA-violation rate of the worst service")
	maxErr := fs.Float64("max-errors", 0.05, "guardrail: max per-window error rate of the worst service")
	chaosWin := fs.Int("chaos-windows", 0, "size of the fault schedule when the spec has a chaos block (0 = the spec's own horizon)")
	obsAddr := fs.String("obs-addr", "", "serve self-observability plus the operator admin API (GET /status, POST /spec, GET /explain/{service}) on this address")
	pushList := fs.String("push", "", "scripted pushes: file@window[,file@window...] — each file is pushed before the given window runs")
	workers := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS); output is identical at any value")
	fs.Parse(args)
	parallel.SetWorkers(*workers)

	if *specPath == "" {
		log.Fatal("ermsctl operate needs -spec <file> (the bootstrap declared state)")
	}
	s, err := spec.ParseFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		log.Fatal(err)
	}
	pushes, err := parsePushSchedule(*pushList)
	if err != nil {
		log.Fatal(err)
	}

	rec := obs.New(nil)
	op, err := operator.New(sc, operator.Config{
		CanaryFraction:   *canary,
		CanaryWindows:    *canaryWin,
		SoakWindows:      *soakWin,
		MaxViolationRate: *maxViol,
		MaxErrorRate:     *maxErr,
		ChaosWindows:     *chaosWin,
	}, rec)
	if err != nil {
		log.Fatal(err)
	}

	var srv *obs.Server
	if *obsAddr != "" {
		srv = obs.NewServer(*obsAddr, op.Handler(rec))
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := srv.Serve(); err != nil {
				log.Fatalf("admin endpoint: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "operator admin + self-observability on http://%s (/status, /spec, /explain/{service}, /metrics)\n", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("operating %q: %d services on %d hosts, %g-minute windows\n",
		sc.Spec.Name, len(sc.App.Services()), sc.Hosts, sc.WindowMin)
loop:
	for w := 0; *windows == 0 || w < *windows; w++ {
		for _, p := range pushes[w] {
			data, err := os.ReadFile(p)
			if err != nil {
				log.Fatal(err)
			}
			if gen, err := op.Push(data, "file:"+p); err != nil {
				fmt.Printf("w%03d push %s REJECTED: %v\n", w, p, err)
			} else {
				fmt.Printf("w%03d push %s -> generation %d (%s)\n", w, p, gen.ID, gen.Status)
			}
		}
		st, err := op.Step()
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("w%03d %-9s gen=%d", st.Window, st.Phase, st.Committed)
		if st.Candidate != 0 {
			line += fmt.Sprintf(" cand=%d canary[viol=%.3f err=%.3f]", st.Candidate, st.CanaryViolationMax, st.CanaryErrorMax)
		}
		line += fmt.Sprintf(" fleet[viol=%.3f err=%.3f ctrs=%d]", st.FleetViolationMax, st.FleetErrorMax, st.FleetContainers)
		if st.ModelSwaps > 0 {
			line += fmt.Sprintf(" swaps=%d", st.ModelSwaps)
		}
		if st.Event != "" {
			line += "  <" + st.Event + ">"
		}
		fmt.Println(line)

		if *windows == 0 {
			// Indefinite mode paces on wall time; a signal ends the run.
			select {
			case <-sig:
				fmt.Fprintln(os.Stderr, "interrupted; stopping")
				break loop
			case <-time.After(*pace):
			}
		} else {
			select {
			case <-sig:
				fmt.Fprintln(os.Stderr, "interrupted; stopping")
				break loop
			default:
			}
		}
	}

	fmt.Println("\ngenerations:")
	for _, g := range op.Generations() {
		line := fmt.Sprintf("  g%-3d %-14s %-11s pushed w%d", g.ID, g.Name, g.Status, g.PushedWindow)
		if g.DecidedWindow >= 0 {
			line += fmt.Sprintf(" decided w%d", g.DecidedWindow)
		}
		if g.Reason != "" {
			line += "  (" + g.Reason + ")"
		}
		fmt.Println(line)
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("admin shutdown: %v", err)
		}
	}
}

// parsePushSchedule parses "-push file@window,file@window" into a
// window-indexed schedule.
func parsePushSchedule(list string) (map[int][]string, error) {
	out := map[int][]string{}
	if list == "" {
		return out, nil
	}
	for _, item := range strings.Split(list, ",") {
		at := strings.LastIndex(item, "@")
		if at <= 0 || at == len(item)-1 {
			return nil, fmt.Errorf("-push %q: want file@window", item)
		}
		w, err := strconv.Atoi(item[at+1:])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-push %q: bad window %q", item, item[at+1:])
		}
		out[w] = append(out[w], item[:at])
	}
	return out, nil
}
