// Command ermsctl drives an Erms system from the command line: pick a
// benchmark application, set per-service request rates, compute the scaling
// plan, and optionally validate it with simulated traffic.
//
// Examples:
//
//	ermsctl -app hotel -rate 40000 -plan
//	ermsctl -app social -rates compose-post=10000,home-timeline=60000,user-timeline=40000 -evaluate
//	ermsctl -app alibaba -services 100 -rate 5000 -plan -scheme fcfs
//	ermsctl -app hotel -rate 30000 -profile -evaluate
//	ermsctl -app hotel -rate 12000 -chaos -chaos-windows 8
//	ermsctl run -spec examples/quickstart/quickstart.yaml -timeline timeline.csv
//
// With -spec, the whole scenario — application, cohorts, SLO tiers,
// population-dynamics phases, resilience — comes from the declarative
// workload spec, and scenario-shaping flags (-app, -rate, -resilience, ...)
// are rejected as contradictory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"erms"
	"erms/internal/chaos"
	"erms/internal/obs"
	"erms/internal/parallel"
	"erms/internal/persist"
	"erms/internal/spec"
)

func main() {
	var (
		appName  = flag.String("app", "hotel", "application: hotel, social, media, alibaba")
		services = flag.Int("services", 100, "service count for -app alibaba")
		rate     = flag.Float64("rate", 20_000, "uniform per-service request rate (req/min)")
		rateList = flag.String("rates", "", "per-service rates: svc=rate,svc=rate (overrides -rate)")
		scheme   = flag.String("scheme", "priority", "shared-microservice scheme: priority, fcfs, nonshared")
		hosts    = flag.Int("hosts", 20, "cluster hosts (32 cores / 64GB each)")
		doPlan   = flag.Bool("plan", false, "print the scaling plan")
		doEval   = flag.Bool("evaluate", false, "simulate the deployment and report SLA outcomes")
		doProf   = flag.Bool("profile", false, "fit models by offline profiling sweeps instead of analytic models")
		duration = flag.Float64("minutes", 2, "simulated minutes for -evaluate")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		dotSvc   = flag.String("dot", "", "print the dependency graph of a service in Graphviz format and exit")
		savePlan = flag.String("save-plan", "", "write the computed plan as JSON to this file")
		saveApp  = flag.String("save-app", "", "write the application topology as JSON to this file and exit")
		loadApp  = flag.String("load-app", "", "load the application from a JSON file (overrides -app)")
		workers  = flag.Int("parallel", 0, "worker-pool size for independent simulation runs (0 = GOMAXPROCS); output is identical at any value")

		simMode  = flag.String("sim-mode", "exact", "evaluation engine fidelity: exact (discrete events everywhere) or hybrid (analytic fluid model for far-from-knee microservices)")
		simParts = flag.Int("sim-partitions", 0, "concurrent sharing-group partition tasks for -evaluate (0 = one per group; with -sim-mode exact any value is byte-identical to the serial engine)")

		shards    = flag.Int("shards", 0, "incremental planner shard count (0 = one shard per worker); any value plans identically")
		planWin   = flag.Int("plan-windows", 0, "drive N planning windows, perturbing a fraction of services each window, and report per-window latency and skip/replan counters")
		dirtyFrac = flag.Float64("dirty-frac", 0.1, "with -plan-windows: fraction of services whose rates change every window")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (view with `go tool pprof`)")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")

		doChaos    = flag.Bool("chaos", false, "run the control loop under a seeded fault schedule and print per-window reports")
		chaosWin   = flag.Int("chaos-windows", 8, "scaling windows for -chaos (each -minutes long)")
		chaosNaive = flag.Bool("chaos-naive", false, "disable resilience for -chaos: no retry, no degraded mode, no replacement scheduling")

		driftOn   = flag.Bool("drift", false, "with -chaos: enable the online profiling drift loop (detect model drift from live samples, re-fit, hot-swap); windows must span >= 2 minutes to carry samples")
		driftThr  = flag.Float64("drift-threshold", 0.75, "with -drift: relative deviation of observed from predicted tail latency that counts as drift")
		driftCons = flag.Int("drift-consecutive", 2, "with -drift: consecutive drifted windows before a re-fit fires (hysteresis)")

		obsAddr = flag.String("obs-addr", "", "serve control-plane self-observability on this address (Prometheus /metrics, JSON /spans, /debug/pprof); the process stays up after the run until interrupted")

		resOn      = flag.Bool("resilience", false, "enable the data-plane fault model in evaluations: deadline propagation, timeouts, crash failure semantics")
		resTimeout = flag.Float64("timeout-sla", 3, "with -resilience: request deadline as a multiple of the service SLA (0 = no deadline)")
		resAttempt = flag.Float64("attempt-timeout", 25, "with -resilience: per-attempt timeout in ms (0 = bound attempts by the request deadline only)")
		resRetries = flag.Int("retries", 1, "with -resilience: max attempts per call edge (1 = no retries)")
		resBudget  = flag.Float64("retry-budget", 0.1, "with -resilience: retry tokens earned per success (0 = unbounded retries, the naive storm)")
		resBreaker = flag.Float64("breaker", 0.5, "with -resilience: circuit-breaker failure-rate threshold per (service, microservice) (0 = no breakers)")
		resShed    = flag.Bool("shed", false, "with -resilience: shed calls at enqueue when the estimated wait overruns the deadline")

		specPath = flag.String("spec", "", "run a declarative workload spec (YAML or JSON); replaces all scenario-shaping flags")
		timeline = flag.String("timeline", "timeline.csv", "with -spec: write the per-minute per-tier timeline CSV to this file (empty = skip)")
	)
	// Accept an optional leading "run" subcommand (ermsctl run -spec ...);
	// flag parsing stops at the first non-flag argument, so strip it first.
	// "operate" dispatches to the long-running operator daemon, which has its
	// own flag set.
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "operate" {
		cmdOperate(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "run" {
		args = args[1:]
	}
	flag.CommandLine.Parse(args)
	parallel.SetWorkers(*workers)

	if *specPath != "" {
		rejectSpecConflicts(*specPath)
	} else if flagWasSet("timeline") {
		log.Fatal("-timeline only applies to spec runs; add -spec <file> or drop -timeline")
	}

	// Profile defers are registered first so they run last: with -obs-addr,
	// holdForScrape blocks until interrupt, and the profiles are written
	// after it returns (the CPU profile then also covers the held period,
	// which samples approximately nothing while idle).
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", path)
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		path := *cpuProf
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", path)
		}()
	}

	if *specPath != "" {
		runSpec(*specPath, *timeline, *obsAddr, *shards)
		return
	}

	var app *erms.App
	switch *appName {
	case "hotel":
		app = erms.HotelReservation()
	case "social":
		app = erms.SocialNetwork()
	case "media":
		app = erms.MediaService()
	case "alibaba":
		app = erms.Alibaba(erms.AlibabaConfig{Seed: *seed, Services: *services})
	default:
		log.Fatalf("unknown app %q", *appName)
	}
	if *loadApp != "" {
		f, err := os.Open(*loadApp)
		if err != nil {
			log.Fatal(err)
		}
		app, err = persist.LoadApp(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *saveApp != "" {
		f, err := os.Create(*saveApp)
		if err != nil {
			log.Fatal(err)
		}
		if err := persist.SaveApp(f, app); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *saveApp)
		return
	}

	if *dotSvc != "" {
		g := app.Graph(*dotSvc)
		if g == nil {
			log.Fatalf("no service %q in %s (services: %v)", *dotSvc, app.Name, app.Services())
		}
		fmt.Print(g.DOT())
		return
	}

	rates := make(map[string]float64)
	for _, svc := range app.Services() {
		rates[svc] = *rate
	}
	if *rateList != "" {
		for _, kv := range strings.Split(*rateList, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad -rates entry %q", kv)
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				log.Fatalf("bad rate in %q: %v", kv, err)
			}
			rates[parts[0]] = v
		}
	}

	var sch erms.Scheme
	switch *scheme {
	case "priority":
		sch = erms.SchemePriority
	case "fcfs":
		sch = erms.SchemeFCFS
	case "nonshared":
		sch = erms.SchemeNonShared
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}

	var res *erms.Resilience
	if *resOn {
		res = &erms.Resilience{
			TimeoutSLAMultiple: *resTimeout,
			AttemptTimeoutMs:   *resAttempt,
			MaxAttempts:        *resRetries,
			RetryBackoffMs:     2,
			RetryJitter:        0.2,
			RetryBudget:        *resBudget,
			BreakerFailureRate: *resBreaker,
			Shed:               *resShed,
		}
	}
	if (*driftOn || flagWasSet("drift-threshold") || flagWasSet("drift-consecutive")) && !*doChaos {
		log.Fatal("-drift* flags only apply to -chaos runs; add -chaos or drop them")
	}
	sysOpts := []erms.Option{erms.WithHosts(*hosts), erms.WithScheme(sch),
		erms.WithResilience(res), erms.WithPlanShards(*shards)}
	if *driftOn {
		sysOpts = append(sysOpts, erms.WithDriftDetection(erms.DriftConfig{
			Threshold:   *driftThr,
			Consecutive: *driftCons,
		}))
	}
	sys, err := erms.NewSystem(app, sysOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if *obsAddr != "" {
		rec := sys.EnableObservability()
		// Bind synchronously: a busy port or bad address must fail the
		// process now with a nonzero exit, not die silently inside a
		// goroutine while the run proceeds unobserved.
		srv := obs.NewServer(*obsAddr, rec.Handler())
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := srv.Serve(); err != nil {
				log.Fatalf("obs endpoint: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "self-observability on http://%s (/metrics, /spans, /debug/pprof)\n", srv.Addr())
		defer holdForScrape(srv)
	}
	if *doProf {
		fmt.Fprintln(os.Stderr, "profiling offline (simulated sweeps)...")
		failed, err := sys.ProfileOffline(erms.OfflineConfig{
			Rates: []float64{5_000, 15_000, 30_000, 45_000, 55_000},
		})
		if err != nil {
			log.Fatal(err)
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "warning: analytic fallback for %v\n", failed)
			sys.UseAnalyticModels()
			if _, err := sys.ProfileOffline(erms.OfflineConfig{
				Rates: []float64{5_000, 15_000, 30_000, 45_000, 55_000},
			}); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		sys.UseAnalyticModels()
	}

	if *doChaos {
		runChaosLoop(sys, app, rates, *chaosWin, *duration, *seed, *chaosNaive)
		return
	}

	if *planWin > 0 {
		runPlanWindows(sys, app, rates, *planWin, *dirtyFrac)
		return
	}

	plan, err := sys.Plan(rates)
	if err != nil {
		log.Fatal(err)
	}
	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			log.Fatal(err)
		}
		if err := persist.SavePlan(f, plan); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *savePlan)
	}

	if *doPlan || !*doEval {
		fmt.Printf("plan for %s (%s scheme): %d containers\n\n", app.Name, sch, plan.TotalContainers())
		var mss []string
		for ms := range plan.Containers {
			mss = append(mss, ms)
		}
		sort.Strings(mss)
		var perSvc []string
		for svc := range plan.PerService {
			perSvc = append(perSvc, svc)
		}
		sort.Strings(perSvc)
		fmt.Printf("%-28s %10s %14s\n", "microservice", "containers", "target(ms)")
		for _, ms := range mss {
			// A shared microservice has one target per service; show the
			// tightest (it's what the deployment must honor). Sorted
			// iteration keeps ties deterministic.
			target := ""
			best := 0.0
			for _, svc := range perSvc {
				if t, ok := plan.PerService[svc].Targets[ms]; ok && (target == "" || t < best) {
					best = t
					target = fmt.Sprintf("%.2f", t)
				}
			}
			fmt.Printf("%-28s %10d %14s\n", ms, plan.Containers[ms], target)
		}
		if len(plan.Ranks) > 0 {
			fmt.Println("\npriorities at shared microservices (0 = highest):")
			var shared []string
			for ms := range plan.Ranks {
				shared = append(shared, ms)
			}
			sort.Strings(shared)
			for _, ms := range shared {
				fmt.Printf("  %-24s %v\n", ms, plan.Ranks[ms])
			}
		}
	}

	if *doEval {
		var evalOpts erms.EvalOpts
		switch *simMode {
		case "exact":
			evalOpts.SimMode = erms.SimExact
		case "hybrid":
			evalOpts.SimMode = erms.SimHybrid
		default:
			log.Fatalf("-sim-mode %q: want exact or hybrid", *simMode)
		}
		evalOpts.SimPartitions = *simParts
		res, err := sys.EvaluateWithOpts(plan, rates, *duration, 0.3, *seed, evalOpts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsimulated %.1f minutes (%s engine):\n", *duration, *simMode)
		var svcs []string
		for svc := range res.TailLatency {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		for _, svc := range svcs {
			line := fmt.Sprintf("  %-20s SLA %6.1fms  P95 %8.2fms  violations %5.2f%%",
				svc, app.SLAs[svc].Threshold, res.TailLatency[svc], 100*res.Violations[svc])
			if *resOn {
				line += fmt.Sprintf("  errors %5.2f%%", 100*res.ErrorRate[svc])
			}
			fmt.Println(line)
		}
		if *resOn {
			fmt.Printf("  goodput %.0f req/min (requests within SLA)\n", res.Goodput)
		}
	}
}

// holdForScrape keeps the process alive after the run so the -obs-addr
// endpoints remain scrapeable; Ctrl-C (or SIGTERM) drains in-flight scrapes
// and exits.
func holdForScrape(srv *obs.Server) {
	fmt.Fprintf(os.Stderr, "run complete; holding http://%s open for scraping (Ctrl-C to exit)\n", srv.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("obs shutdown: %v", err)
	}
}

// runPlanWindows drives the controller's incremental planner window by
// window: every window the first ⌈dirty-frac · services⌉ services get a
// fresh rate multiplier, and the loop reports how long the replan took and
// how many services were skipped versus replanned (the dirty closure is the
// perturbed services' sharing groups).
func runPlanWindows(sys *erms.System, app *erms.App, rates map[string]float64,
	windows int, frac float64) {
	ctrl := sys.Controller()
	if ctrl.Planner == nil {
		log.Fatal("-plan-windows needs the incremental planner (it is on by default; remove any option disabling it)")
	}
	svcs := app.Services()
	sort.Strings(svcs)
	n := int(frac*float64(len(svcs)) + 0.999999)
	if n > len(svcs) {
		n = len(svcs)
	}
	victims := svcs[:n]
	base := make(map[string]float64, len(rates))
	for svc, r := range rates {
		base[svc] = r
	}

	// Cold window compiles the templates and seeds the fingerprints; it is
	// reported separately because steady state is the interesting number.
	start := time.Now()
	if _, err := sys.Plan(rates); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan loop: %s, %d services, %d dirty per window (%.0f%%), shards=%d\n\n",
		app.Name, len(svcs), n, 100*frac, ctrl.Planner.Stats().Shards)
	fmt.Printf("%-6s %12s %9s %10s %12s\n", "window", "latency", "skipped", "replanned", "containers")
	fmt.Printf("%-6s %12s %9s %10s\n", "cold", time.Since(start).Round(time.Microsecond), "-", "-")
	prev := ctrl.Planner.Stats()
	for w := 0; w < windows; w++ {
		mult := 1 + 0.01*float64(w+1)
		for _, svc := range victims {
			rates[svc] = base[svc] * mult
		}
		start = time.Now()
		plan, err := sys.Plan(rates)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		st := ctrl.Planner.Stats()
		fmt.Printf("%-6d %12s %9d %10d %12d\n", w,
			elapsed.Round(time.Microsecond),
			st.SkippedServices-prev.SkippedServices,
			st.DirtyServices-prev.DirtyServices,
			plan.TotalContainers())
		prev = st
	}
}

// runChaosLoop generates the standard fault schedule for the cluster, binds
// it to the orchestrator, and drives the reconciler window by window,
// printing what was injected and how the loop coped.
func runChaosLoop(sys *erms.System, app *erms.App, rates map[string]float64,
	windows int, windowMin float64, seed uint64, naive bool) {
	ctrl := sys.Controller()
	cfg := chaos.Default(seed, windows, windowMin, ctrl.Orch.Cluster().NumHosts(), app.Microservices())
	sched, err := chaos.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inj := chaos.NewInjector(sched, ctrl.Orch)
	inj.SetRecorder(ctrl.Obs)

	rec := sys.NewReconciler()
	rec.WindowMin = windowMin
	if windowMin < 1 {
		rec.WarmupMin = windowMin / 4
	}
	rec.Chaos = inj
	mode := "resilient"
	if naive {
		rec.Naive()
		mode = "naive"
	}

	fmt.Printf("chaos run: %s, %d windows x %.1f min, seed %d, %s loop\n",
		app.Name, windows, windowMin, seed, mode)
	fmt.Printf("schedule: %d faults\n\n", len(sched.Faults))
	fmt.Printf("%-4s %-28s %10s %8s %7s %7s  %s\n",
		"win", "faults", "containers", "repaired", "retries", "viol", "flags")
	for w := 0; w < windows; w++ {
		if _, err := inj.BeginWindow(w); err != nil {
			log.Fatal(err)
		}
		rep, err := rec.Step(rates, seed+uint64(w)*101+7)
		if err != nil {
			fmt.Printf("%-4d %-28s control loop aborted: %v\n", w, sched.Summary(w), err)
			if naive {
				fmt.Println("\nnaive loop froze; rerun without -chaos-naive to see the resilient loop recover")
				return
			}
			log.Fatal(err)
		}
		if err := inj.EndWindow(w); err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, v := range rep.Violations {
			if v > worst {
				worst = v
			}
		}
		var flags []string
		if rep.Degraded {
			flags = append(flags, "degraded")
		}
		if rep.Outage {
			flags = append(flags, "outage")
		}
		if rep.ObsGap {
			flags = append(flags, "obs-gap")
		}
		if rep.ModelSwaps > 0 {
			flags = append(flags, fmt.Sprintf("swapped:%d", rep.ModelSwaps))
		}
		fmt.Printf("%-4d %-28s %10d %8d %7d %7.3f  %s\n",
			w, sched.Summary(w), rep.Containers, rep.Repaired, rep.Retries, worst,
			strings.Join(flags, ","))
	}
	if ctrl.Drift != nil {
		st := ctrl.Drift.Stats()
		fmt.Printf("\ndrift loop: %d windows scored, %d detections, %d swaps (%d segmented re-fits, %d recalibrations), max score %.2f\n",
			st.Windows, st.Detections, st.Swaps, st.Refits, st.Fallbacks, st.MaxScore)
	}
}

// flagWasSet reports whether the named flag appeared on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// specConflicts are the scenario-shaping flags a workload spec replaces:
// setting any of them together with -spec is contradictory and rejected.
var specConflicts = []string{
	"app", "services", "rate", "rates", "scheme", "hosts", "seed", "minutes",
	"plan", "evaluate", "profile", "dot", "save-plan", "save-app", "load-app",
	"chaos", "chaos-windows", "chaos-naive", "plan-windows", "dirty-frac",
	"drift", "drift-threshold", "drift-consecutive",
	"resilience", "timeout-sla", "attempt-timeout", "retries", "retry-budget",
	"breaker", "shed",
	"sim-mode", "sim-partitions",
}

// rejectSpecConflicts fails fast when -spec is combined with flags the spec
// itself defines.
func rejectSpecConflicts(specFile string) {
	conflicting := make(map[string]bool, len(specConflicts))
	for _, name := range specConflicts {
		conflicting[name] = true
	}
	var bad []string
	flag.Visit(func(f *flag.Flag) {
		if conflicting[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		sort.Strings(bad)
		log.Fatalf("-spec %s defines the whole scenario (app, workload, run, resilience); "+
			"drop the contradictory flag(s): %s", specFile, strings.Join(bad, ", "))
	}
}

// runSpec parses, compiles, and runs a declarative workload spec, printing
// the per-tier outcome summary and writing the timeline CSV artifact.
func runSpec(path, timelinePath, obsAddr string, shards int) {
	s, err := spec.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		log.Fatal(err)
	}
	sc.PlanShards = shards
	var rec *obs.Recorder
	var srv *obs.Server
	if obsAddr != "" {
		rec = obs.New(nil)
		srv = obs.NewServer(obsAddr, rec.Handler())
		// Synchronous bind: fail the run now with a nonzero exit instead of
		// letting the listener goroutine die unnoticed.
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := srv.Serve(); err != nil {
				log.Fatalf("obs endpoint: %v", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "self-observability on http://%s (/metrics, /spans, /debug/pprof)\n", srv.Addr())
	}
	start := time.Now()
	res, err := sc.Run(rec)
	if err != nil {
		log.Fatal(err)
	}
	res.Report(os.Stdout)
	fmt.Printf("run took %.2fs wall\n", time.Since(start).Seconds())
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteTimelineCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", timelinePath)
	}
	if srv != nil {
		holdForScrape(srv)
	}
}
