// Command experiments regenerates the paper's evaluation tables and figures
// against the simulated substrate. Run with -list to see available
// experiment IDs, -fig to select specific ones (comma-separated), or -all.
//
// Example:
//
//	go run ./cmd/experiments -fig fig11,fig12
//	go run ./cmd/experiments -all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"erms/internal/experiments"
	"erms/internal/parallel"
)

func main() {
	var (
		figs    = flag.String("fig", "", "comma-separated experiment IDs (e.g. fig2,fig11)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "reduced sweeps and simulation time")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		format  = flag.String("format", "text", "output format: text, markdown, csv")
		workers = flag.Int("parallel", 0, "worker-pool size for independent simulation runs (0 = GOMAXPROCS); output is identical at any value")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *figs != "":
		for _, id := range strings.Split(*figs, ",") {
			id = strings.TrimSpace(id)
			// Accept both "2" and "fig2".
			if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "sc") && !strings.HasPrefix(id, "thm") {
				id = "fig" + id
			}
			ids = append(ids, id)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: experiments -all | -fig <ids> [-quick]; -list shows IDs")
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			switch *format {
			case "markdown", "md":
				t.FprintMarkdown(os.Stdout)
			case "csv":
				t.FprintCSV(os.Stdout)
			default:
				t.Fprint(os.Stdout)
			}
		}
		if *format == "text" {
			fmt.Printf("-- %s completed in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		_ = start
	}
}
