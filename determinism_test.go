package erms

import (
	"encoding/json"
	"testing"

	"erms/internal/parallel"
)

// planEvalJSON plans and evaluates the Hotel application at a fixed seed and
// returns both results as canonical JSON.
func planEvalJSON(t *testing.T, seed uint64) (planJS, evalJS string) {
	t.Helper()
	sys, err := NewSystem(HotelReservation())
	if err != nil {
		t.Fatal(err)
	}
	sys.UseAnalyticModels()
	rates := hotelRates(25_000)
	plan, err := sys.Plan(rates)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Evaluate(plan, rates, 0.5, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(pb), string(rb)
}

// TestEvaluateDeterministicAcrossWorkers pins the end-to-end determinism
// contract at the public API: the same seed must produce a byte-identical
// plan (Plan fans out per-service decomposition) and byte-identical
// EvalResult regardless of the parallel worker count.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	plan1, eval1 := planEvalJSON(t, 7)

	parallel.SetWorkers(4)
	plan4, eval4 := planEvalJSON(t, 7)

	if plan1 != plan4 {
		t.Errorf("plan differs between workers=1 and workers=4:\n%s\nvs\n%s", plan1, plan4)
	}
	if eval1 != eval4 {
		t.Errorf("EvalResult differs between workers=1 and workers=4:\n%s\nvs\n%s", eval1, eval4)
	}

	// Same worker count, same seed: reruns must also agree (no shared
	// mutable state survives an Evaluate call).
	plan4b, eval4b := planEvalJSON(t, 7)
	if plan4 != plan4b || eval4 != eval4b {
		t.Error("repeated run at workers=4 is not stable")
	}
}

// TestProfileOfflineDeterministicAcrossWorkers checks the profiling sweep:
// each (level, rate) point owns seed cfg.Seed+index and a cloned cluster, so
// the fitted models — and any plan computed from them — must not depend on
// how the sweep was scheduled.
func TestProfileOfflineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	planWith := func(workers int) string {
		parallel.SetWorkers(workers)
		sys, err := NewSystem(HotelReservation(), WithHosts(12))
		if err != nil {
			t.Fatal(err)
		}
		// Analytic models first: microservices the short sweep cannot fit
		// keep them, so the post-profiling plan is always computable.
		sys.UseAnalyticModels()
		if _, err := sys.ProfileOffline(OfflineConfig{
			Rates:     []float64{5_000, 15_000, 30_000},
			WindowMin: 0.4,
			Seed:      3,
		}); err != nil {
			t.Fatal(err)
		}
		plan, err := sys.Plan(hotelRates(25_000))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(plan)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	defer parallel.SetWorkers(0)
	seqPlan := planWith(1)
	parPlan := planWith(4)
	if seqPlan != parPlan {
		t.Errorf("post-profiling plan differs between workers=1 and workers=4:\n%s\nvs\n%s", seqPlan, parPlan)
	}
}
