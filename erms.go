// Package erms is a from-scratch Go implementation of Erms — Efficient
// Resource Management for Shared Microservices with SLA Guarantees
// (ASPLOS 2023) — together with every substrate it runs on: a
// discrete-event microservice cluster simulator, a mini container
// orchestrator, a tracing stack, piece-wise-linear latency profiling, the
// closed-form latency-target optimizer with graph merging (Algorithm 1),
// priority scheduling at shared microservices, interference-aware
// provisioning, and the GrandSLAm/Rhythm/Firm baselines the paper compares
// against.
//
// The top-level API mirrors how an operator would use Erms:
//
//	app := erms.SocialNetwork()
//	sys, _ := erms.NewSystem(app, erms.WithHosts(20))
//	sys.UseAnalyticModels()
//	plan, _ := sys.Plan(map[string]float64{
//	    "compose-post": 30_000, "home-timeline": 30_000, "user-timeline": 30_000,
//	})
//	res, _ := sys.Evaluate(plan, rates, 3 /*min*/, 0.5 /*warmup*/, 1 /*seed*/)
//	fmt.Println(plan.TotalContainers(), res.TailLatency)
//
// Everything is deterministic for fixed seeds and uses only the standard
// library.
package erms

import (
	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/drift"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/obs"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/workload"
)

// App describes a benchmark application: per-service dependency graphs,
// per-microservice service-time profiles and container specs, and default
// SLAs.
type App = apps.App

// SocialNetwork builds the DeathStarBench-equivalent Social Network
// application: 36 microservices, 3 services, 3 shared microservices.
func SocialNetwork() *App { return apps.SocialNetwork() }

// MediaService builds the Media Service application: 38 microservices in a
// single compose-review service.
func MediaService() *App { return apps.MediaService() }

// HotelReservation builds the Hotel Reservation application: 15
// microservices, 4 services, 3 shared microservices.
func HotelReservation() *App { return apps.HotelReservation() }

// AlibabaConfig parameterizes the synthetic production-trace generator.
type AlibabaConfig = apps.AlibabaConfig

// Alibaba generates a production-shaped application (Taobao scale by
// default: 500 services × ~50 microservices, 300+ shared).
func Alibaba(cfg AlibabaConfig) *App { return apps.Alibaba(cfg) }

// SLA is a tail-latency service-level agreement.
type SLA = workload.SLA

// P95SLA builds the common 95th-percentile SLA.
func P95SLA(service string, thresholdMs float64) SLA { return workload.P95SLA(service, thresholdMs) }

// Scheme selects how shared microservices are handled.
type Scheme = multiplex.Scheme

// Shared-microservice schemes (§2.3): Erms' priority scheduling, plain FCFS
// sharing, and per-service container partitioning.
const (
	SchemePriority  = multiplex.SchemePriority
	SchemeFCFS      = multiplex.SchemeFCFS
	SchemeNonShared = multiplex.SchemeNonShared
)

// Plan is a multi-service allocation: latency targets, container counts,
// and priority ranks at shared microservices.
type Plan = multiplex.Plan

// EvalResult is the outcome of simulating a deployed plan.
type EvalResult = core.EvalResult

// EvalOpts carries per-window evaluation options: fault injection, cohort
// streams, and the simulation engine selection (exact serial, partitioned,
// or hybrid fluid/discrete — see SimExact / SimHybrid).
type EvalOpts = core.EvalOpts

// Simulation fidelity modes for EvalOpts.SimMode.
const (
	// SimExact runs the exact discrete-event engine (the default).
	SimExact = sim.SimExact
	// SimHybrid serves far-from-knee microservices from the analytic
	// M/M/c fluid model and keeps near-knee ones on discrete events.
	SimHybrid = sim.SimHybrid
)

// Resilience configures the data-plane fault model: deadline propagation,
// budgeted retries, circuit breaking, admission control, and crash failure
// semantics (see sim.Resilience).
type Resilience = sim.Resilience

// OfflineConfig drives empirical profiling sweeps.
type OfflineConfig = core.OfflineConfig

// System is an Erms deployment: one application managed on one simulated
// cluster.
type System struct {
	ctrl *core.Controller
}

// Option configures NewSystem.
type Option func(*config)

type config struct {
	hosts         int
	hostSpec      cluster.HostSpec
	scheme        Scheme
	delta         float64
	popGroups     int
	resilience    *Resilience
	planShards    int
	noIncremental bool
	driftCfg      *DriftConfig
}

// WithHosts sets the cluster size (default 20, the paper's testbed).
func WithHosts(n int) Option { return func(c *config) { c.hosts = n } }

// WithHostSpec overrides the per-host capacity (default 32 cores / 64 GB).
func WithHostSpec(cores int, memGB float64) Option {
	return func(c *config) { c.hostSpec = cluster.HostSpec{Cores: cores, MemGB: memGB} }
}

// WithScheme selects the shared-microservice scheme (default priority).
func WithScheme(s Scheme) Option { return func(c *config) { c.scheme = s } }

// WithDelta sets the probabilistic-priority parameter δ (default 0.05).
func WithDelta(d float64) Option { return func(c *config) { c.delta = d } }

// WithPOPGroups sets the provisioning partition count (default 4).
func WithPOPGroups(g int) Option { return func(c *config) { c.popGroups = g } }

// WithResilience enables the data-plane fault model in every evaluation
// simulation (nil, the default, keeps the infallible data plane).
func WithResilience(r *Resilience) Option { return func(c *config) { c.resilience = r } }

// WithPlanShards sets the incremental planner's shard count (a parallelism
// hint — plans are byte-identical at any value; <= 0, the default, sizes
// shards to the worker pool).
func WithPlanShards(n int) Option { return func(c *config) { c.planShards = n } }

// WithoutIncrementalPlanning disables change-driven incremental planning,
// replanning every service every window. Plans are bit-identical either
// way; this exists for benchmarking and as an escape hatch.
func WithoutIncrementalPlanning() Option { return func(c *config) { c.noIncremental = true } }

// DriftConfig tunes the online profiling drift detector (see package drift;
// the zero value applies documented defaults).
type DriftConfig = drift.Config

// WithDriftDetection enables the online profiling drift loop: every
// reconciliation window the live latency samples are scored against the
// current models, and a microservice whose observations stay past the
// threshold for consecutive windows gets its model re-fitted and swapped
// in. Off by default; windows must span at least two whole minutes for the
// detector to see any samples.
func WithDriftDetection(cfg DriftConfig) Option { return func(c *config) { c.driftCfg = &cfg } }

// NewSystem creates an Erms system managing the application on a fresh
// simulated cluster with interference-aware provisioning.
func NewSystem(app *App, opts ...Option) (*System, error) {
	cfg := config{
		hosts:     20,
		hostSpec:  cluster.PaperHost,
		scheme:    SchemePriority,
		delta:     0.05,
		popGroups: 4,
	}
	for _, o := range opts {
		o(&cfg)
	}
	cl := cluster.New(cfg.hosts, cfg.hostSpec)
	orch := kube.New(cl, nil)
	coreOpts := []core.Option{
		core.WithScheme(cfg.scheme),
		core.WithDelta(cfg.delta),
		core.WithScheduler(&provision.InterferenceAware{Groups: cfg.popGroups}),
		core.WithResilience(cfg.resilience),
		core.WithPlanShards(cfg.planShards),
	}
	if cfg.noIncremental {
		coreOpts = append(coreOpts, core.WithoutIncrementalPlanning())
	}
	if cfg.driftCfg != nil {
		coreOpts = append(coreOpts, core.WithDriftDetection(*cfg.driftCfg))
	}
	ctrl, err := core.New(app, orch, coreOpts...)
	if err != nil {
		return nil, err
	}
	return &System{ctrl: ctrl}, nil
}

// SetResilience enables (or, with nil, disables) the data-plane fault model
// for subsequent evaluations.
func (s *System) SetResilience(r *Resilience) { s.ctrl.Resilience = r }

// UseAnalyticModels installs first-principles latency models derived from
// the application's service profiles — the fast path. ProfileOffline
// replaces them with empirically fitted models.
func (s *System) UseAnalyticModels() { s.ctrl.UseAnalyticModels() }

// ProfileOffline runs simulated profiling sweeps (§5.2, §6.2) and fits the
// piece-wise linear latency models from the collected traces. It returns
// the microservices that could not be fitted.
func (s *System) ProfileOffline(cfg OfflineConfig) ([]string, error) {
	return s.ctrl.ProfileOffline(cfg)
}

// Plan runs Online Scaling (§5.3) for the given per-service request rates
// (requests/minute): graph merge, latency target computation, priority
// assignment at shared microservices, and recomputation under the modified
// workloads.
func (s *System) Plan(rates map[string]float64) (*Plan, error) { return s.ctrl.Plan(rates) }

// Apply reconciles a plan onto the cluster through the orchestrator and the
// interference-aware provisioner.
func (s *System) Apply(plan *Plan) error { return s.ctrl.Apply(plan) }

// Evaluate applies a plan and drives the deployment with real (simulated)
// traffic for durationMin minutes, returning measured tail latencies and
// SLA violation rates per service.
func (s *System) Evaluate(plan *Plan, rates map[string]float64, durationMin, warmupMin float64, seed uint64) (*EvalResult, error) {
	return s.ctrl.EvaluatePlan(plan, rates, durationMin, warmupMin, seed)
}

// EvaluateWithOpts is Evaluate with explicit per-window options: fault
// injection, SLO-tiered streams, and the evaluation engine selection
// (EvalOpts.SimMode / SimPartitions route through the partitioned parallel
// simulator; the zero EvalOpts keeps the historical serial exact engine).
func (s *System) EvaluateWithOpts(plan *Plan, rates map[string]float64, durationMin, warmupMin float64, seed uint64, opts EvalOpts) (*EvalResult, error) {
	if err := s.ctrl.Apply(plan); err != nil {
		return nil, err
	}
	return s.ctrl.EvaluateDeployed(plan, rates, durationMin, warmupMin, seed, opts)
}

// PlanAndEvaluate is Plan followed by Evaluate.
func (s *System) PlanAndEvaluate(rates map[string]float64, durationMin, warmupMin float64, seed uint64) (*EvalResult, error) {
	return s.ctrl.Evaluate(rates, durationMin, warmupMin, seed)
}

// SetBackground injects colocated batch-job interference on one host (the
// iBench substitute). Host IDs run 0..hosts-1.
func (s *System) SetBackground(hostID int, cpuUtil, memUtil float64) error {
	return s.ctrl.Orch.Cluster().SetBackground(hostID, workload.Interference{CPU: cpuUtil, Mem: memUtil})
}

// Explain renders the Algorithm 1 merge tree and latency-target derivation
// for one service at the given rates — why each microservice got its target.
func (s *System) Explain(service string, rates map[string]float64) (string, error) {
	return s.ctrl.Explain(service, rates)
}

// NewReconciler wraps the system in the periodic scaling loop of Fig. 6,
// with scale-down hysteresis. It inherits the system's self-observability
// recorder, if one was enabled.
func (s *System) NewReconciler() *core.Reconciler { return core.NewReconciler(s.ctrl) }

// Recorder is the control plane's self-observability recorder: phase spans
// of the reconciliation loop, erms.self.* counters, and the /metrics +
// /spans + pprof HTTP surface. A nil *Recorder is valid and disables
// self-telemetry at zero cost.
type Recorder = obs.Recorder

// EnableObservability attaches a fresh self-observability recorder to the
// system — controller, orchestrator, and any reconciler created afterwards
// — bound to the system's metrics store, and returns it. Serve it with
// Recorder.ListenAndServe (or mount Recorder.Handler) to expose Prometheus
// text metrics, a JSON span dump, and net/http/pprof.
func (s *System) EnableObservability() *Recorder {
	rec := obs.New(s.ctrl.Metrics)
	s.ctrl.Obs = rec
	s.ctrl.Orch.SetRecorder(rec)
	return rec
}

// TotalContainers reports the containers currently deployed.
func (s *System) TotalContainers() int { return s.ctrl.Orch.TotalReplicas() }

// Controller exposes the underlying controller for advanced use (module
// internals remain importable only within this repository).
func (s *System) Controller() *core.Controller { return s.ctrl }

// ServiceProfile re-exports the simulator's per-microservice cost model for
// building custom applications.
type ServiceProfile = sim.ServiceProfile
