// Package erms benchmarks regenerate every table and figure of the paper's
// evaluation (quick mode; run cmd/experiments for the full sweeps):
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the regenerated series once, then times repeated
// regeneration. EXPERIMENTS.md records paper-vs-measured for each.
package erms

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"erms/internal/experiments"
)

var printedMu sync.Mutex
var printed = map[string]bool{}

// printTablesOnce renders the tables for one experiment ID to a buffer and
// writes them to stdout in a single call, at most once per ID across the
// whole benchmark run. Buffering matters: the testing package interleaves
// its own b.N rerun lines on stdout, and a table printed piecemeal ends up
// shuffled into them.
func printTablesOnce(id string, tables []*experiments.Table) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[id] {
		return
	}
	printed[id] = true
	var buf bytes.Buffer
	buf.WriteByte('\n')
	for _, t := range tables {
		t.Fprint(&buf)
	}
	os.Stdout.Write(buf.Bytes())
}

// runExperiment executes one experiment driver in quick mode, printing its
// tables on the first run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		printTablesOnce(id, tables)
	}
}

// BenchmarkFig02SharingCDF regenerates Fig. 2: the CDF of microservices
// shared by N online services in the Alibaba-shaped topology.
func BenchmarkFig02SharingCDF(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig03LatencyCurves regenerates Fig. 3: P95 latency vs workload
// under different host interference, simulated truth vs piece-wise fit.
func BenchmarkFig03LatencyCurves(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig04TargetsAndUsage regenerates Fig. 4: latency targets and
// normalized resource usage on the U→P chain for Erms vs GrandSLAm/Rhythm.
func BenchmarkFig04TargetsAndUsage(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig05MultiplexingSchemes regenerates the §2.3/Fig. 5 experiment:
// CPU cores under FCFS sharing, non-sharing, and priority scheduling.
func BenchmarkFig05MultiplexingSchemes(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig08Alg1GraphMerge regenerates the Fig. 7/8 walkthrough:
// Algorithm 1 latency targets on the example graph.
func BenchmarkFig08Alg1GraphMerge(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig09DeltaSweep regenerates Fig. 9: response time versus the
// probabilistic-priority parameter δ.
func BenchmarkFig09DeltaSweep(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ProfilingAccuracy regenerates Fig. 10: profiling accuracy
// across applications (a) and versus training-set size (b).
func BenchmarkFig10ProfilingAccuracy(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11ContainersStatic regenerates Fig. 11: containers allocated
// across static workload/SLA settings (CDF and averages).
func BenchmarkFig11ContainersStatic(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12SLAOutcomes regenerates Fig. 12: simulated SLA violation
// probability and normalized tail latency per scheme.
func BenchmarkFig12SLAOutcomes(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13DynamicWorkload regenerates Fig. 13: containers and tail
// latency over time under the dynamic Alibaba-shaped workload.
func BenchmarkFig13DynamicWorkload(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14ModuleAblations regenerates Fig. 14: Latency Target
// Computation alone and the marginal benefit of priority scheduling.
func BenchmarkFig14ModuleAblations(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15Provisioning regenerates Fig. 15: interference-aware
// provisioning versus the stock Kubernetes scheduler.
func BenchmarkFig15Provisioning(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16TraceDriven regenerates Fig. 16: the Taobao-scale
// trace-driven comparison (CDF per service and totals).
func BenchmarkFig16TraceDriven(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Scalability regenerates §6.5.2: latency-target-computation
// time versus dependency-graph size.
func BenchmarkFig17Scalability(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18Theorem1 validates Theorem 1 numerically across random
// scenarios.
func BenchmarkFig18Theorem1(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19DynamicGraphs runs the §9 future-work extension: class-based
// scaling of dynamic dependency-graph variants versus the complete graph.
func BenchmarkFig19DynamicGraphs(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20POPAblation sweeps the provisioning partition count (§5.4).
func BenchmarkFig20POPAblation(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkFig21ExactGap measures the cost of Erms' scalable per-service
// decomposition against the exact Eq. 13-14 optimum (dual-ascent solver).
func BenchmarkFig21ExactGap(b *testing.B) { runExperiment(b, "fig21") }

// BenchmarkFig22FaultInjection runs the three control loops (resilient Erms,
// naive Erms, Firm) under the standard seeded fault schedule.
func BenchmarkFig22FaultInjection(b *testing.B) { runExperiment(b, "fig22") }

// BenchmarkFigScale regenerates the planner-scalability comparison (§6.5.2):
// naive per-window planning versus compiled plan templates on exact-shape
// Alibaba-scale topologies.
func BenchmarkFigScale(b *testing.B) { runExperiment(b, "figScale") }

// --- micro-benchmarks on the core primitives -----------------------------

// BenchmarkPlanHotel times one full Online Scaling pass (graph merge +
// latency targets + priority recomputation) for the Hotel application.
func BenchmarkPlanHotel(b *testing.B) {
	sys, err := NewSystem(HotelReservation())
	if err != nil {
		b.Fatal(err)
	}
	sys.UseAnalyticModels()
	rates := hotelRates(40_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Plan(rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSocialNetwork times Online Scaling for the 36-microservice
// Social Network application.
func BenchmarkPlanSocialNetwork(b *testing.B) {
	sys, err := NewSystem(SocialNetwork())
	if err != nil {
		b.Fatal(err)
	}
	sys.UseAnalyticModels()
	rates := map[string]float64{
		"compose-post": 20_000, "home-timeline": 40_000, "user-timeline": 30_000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Plan(rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures discrete-event throughput: simulated
// requests per wall-clock second on a small deployment.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys, err := NewSystem(HotelReservation())
	if err != nil {
		b.Fatal(err)
	}
	sys.UseAnalyticModels()
	rates := hotelRates(20_000)
	plan, err := sys.Plan(rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Evaluate(plan, rates, 1, 0, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*20_000*4, "simulated-requests/op-total")
}
