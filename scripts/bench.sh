#!/usr/bin/env sh
# Planner-scalability benchmarks for the compiled plan templates (PR 5).
#
# Runs the per-window scaling benchmark (naive scaling.Plan vs a warmed
# scaling.TemplateCache) and the full multi-service PlanScheme benchmark on
# Alibaba-scale topologies, writes the raw `go test -bench` output to
# bench_5.txt (benchstat-friendly: pass -count=10 and feed two files to
# `benchstat old.txt new.txt`), and records the headline compiled-vs-naive
# speedup in BENCH_5.json.
#
# Usage:
#   scripts/bench.sh            # full run (benchtime/count below)
#   BENCH_COUNT=10 scripts/bench.sh
#   BENCH_SMOKE=1 scripts/bench.sh   # 1 iteration per benchmark (CI smoke)
set -eu

cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-1}"
BENCHTIME="${BENCH_BENCHTIME:-2s}"
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
	BENCHTIME=1x
fi
OUT="${BENCH_OUT:-bench_5.txt}"
JSON="${BENCH_JSON:-BENCH_5.json}"

echo "== planner benchmarks (benchtime=$BENCHTIME count=$COUNT) =="
go test -run '^$' -bench 'BenchmarkCompiledVsNaive' \
	-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
	./internal/scaling | tee "$OUT"
go test -run '^$' -bench 'BenchmarkPlanScale' \
	-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
	./internal/multiplex | tee -a "$OUT"

# Fold the raw output into BENCH_5.json: mean ns/op per benchmark name and
# the headline per-window speedup (naive / compiled) on the 100x50x10
# topology. The acceptance gate for PR 5 is speedup >= 5.
awk -v json="$JSON" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] += $3
	cnt[name]++
}
END {
	naive = ns["BenchmarkCompiledVsNaive/naive"] / cnt["BenchmarkCompiledVsNaive/naive"]
	comp = ns["BenchmarkCompiledVsNaive/compiled"] / cnt["BenchmarkCompiledVsNaive/compiled"]
	speedup = naive / comp
	printf "{\n" > json
	printf "  \"benchmark\": \"BenchmarkCompiledVsNaive\",\n" >> json
	printf "  \"topology\": {\"services\": 100, \"microservices_per_service\": 50, \"sharing_degree\": 10},\n" >> json
	printf "  \"naive_ns_per_window\": %.0f,\n", naive >> json
	printf "  \"compiled_ns_per_window\": %.0f,\n", comp >> json
	printf "  \"speedup\": %.2f,\n", speedup >> json
	printf "  \"gate\": \"speedup >= 5\",\n" >> json
	printf "  \"pass\": %s\n", (speedup >= 5 ? "true" : "false") >> json
	printf "}\n" >> json
	printf "speedup: %.2fx (gate >= 5): %s\n", speedup, (speedup >= 5 ? "PASS" : "FAIL")
}' "$OUT"

echo "wrote $OUT and $JSON"
