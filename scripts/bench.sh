#!/usr/bin/env sh
# Planner-scalability benchmarks.
#
# Each target runs a benchmark pair, writes the raw `go test -bench` output
# (benchstat-friendly: pass BENCH_COUNT=10 and feed two files to
# `benchstat old.txt new.txt`), and folds the headline speedup into a JSON
# record with its own pass/fail gate:
#
#   bench5  compiled plan templates (PR 5): naive scaling.Plan vs a warmed
#           TemplateCache per window      -> bench_5.txt, BENCH_5.json
#   bench6  incremental sharded planning (PR 6): monolithic PlanSchemeCached
#           vs IncrementalPlanner at 10% dirty services per window on the
#           1000x50x10 topology           -> bench_6.txt, BENCH_6.json
#   bench7  simulator engine throughput (PR 10): serial exact engine vs the
#           hybrid fluid/discrete partitioned engine, in simulated requests
#           per wall-clock second         -> bench_7.txt, BENCH_7.json
#   all     all targets in sequence
#
# Usage:
#   scripts/bench.sh [bench5|bench6|bench7|all]   # default: all
#   BENCH_COUNT=10 scripts/bench.sh bench6
#   BENCH_SMOKE=1 scripts/bench.sh bench5  # 1 iteration per benchmark (CI)
#   BENCH_OUT=... BENCH_JSON=... scripts/bench.sh bench6   # override paths
set -eu

cd "$(dirname "$0")/.."

TARGET="${1:-all}"
COUNT="${BENCH_COUNT:-1}"
BENCHTIME="${BENCH_BENCHTIME:-2s}"
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
	BENCHTIME=1x
fi

bench5() {
	OUT="${BENCH_OUT:-bench_5.txt}"
	JSON="${BENCH_JSON:-BENCH_5.json}"
	echo "== bench5: compiled plan templates (benchtime=$BENCHTIME count=$COUNT) =="
	go test -run '^$' -bench 'BenchmarkCompiledVsNaive' \
		-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
		./internal/scaling | tee "$OUT"
	go test -run '^$' -bench 'BenchmarkPlanScale' \
		-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
		./internal/multiplex | tee -a "$OUT"

	# Fold into BENCH_5.json: mean ns/op per benchmark name and the headline
	# per-window speedup (naive / compiled) on the 100x50x10 topology. The
	# acceptance gate for PR 5 is speedup >= 5.
	awk -v json="$JSON" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns[name] += $3
		cnt[name]++
	}
	END {
		naive = ns["BenchmarkCompiledVsNaive/naive"] / cnt["BenchmarkCompiledVsNaive/naive"]
		comp = ns["BenchmarkCompiledVsNaive/compiled"] / cnt["BenchmarkCompiledVsNaive/compiled"]
		speedup = naive / comp
		printf "{\n" > json
		printf "  \"benchmark\": \"BenchmarkCompiledVsNaive\",\n" >> json
		printf "  \"topology\": {\"services\": 100, \"microservices_per_service\": 50, \"sharing_degree\": 10},\n" >> json
		printf "  \"naive_ns_per_window\": %.0f,\n", naive >> json
		printf "  \"compiled_ns_per_window\": %.0f,\n", comp >> json
		printf "  \"speedup\": %.2f,\n", speedup >> json
		printf "  \"gate\": \"speedup >= 5\",\n" >> json
		printf "  \"pass\": %s\n", (speedup >= 5 ? "true" : "false") >> json
		printf "}\n" >> json
		printf "bench5 speedup: %.2fx (gate >= 5): %s\n", speedup, (speedup >= 5 ? "PASS" : "FAIL")
	}' "$OUT"
	echo "wrote $OUT and $JSON"
}

bench6() {
	OUT="${BENCH_OUT:-bench_6.txt}"
	JSON="${BENCH_JSON:-BENCH_6.json}"
	echo "== bench6: incremental sharded planning (benchtime=$BENCHTIME count=$COUNT) =="
	go test -run '^$' -bench 'BenchmarkIncrementalVsCompiled' \
		-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
		./internal/multiplex | tee "$OUT"

	# Fold into BENCH_6.json: mean ns/op for the monolithic compiled planner
	# vs the incremental planner at 10% dirty services per window. The
	# acceptance gate for PR 6 is compiled / incremental >= 5.
	awk -v json="$JSON" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns[name] += $3
		cnt[name]++
	}
	END {
		comp = ns["BenchmarkIncrementalVsCompiled/compiled"] / cnt["BenchmarkIncrementalVsCompiled/compiled"]
		incr = ns["BenchmarkIncrementalVsCompiled/incremental"] / cnt["BenchmarkIncrementalVsCompiled/incremental"]
		speedup = comp / incr
		printf "{\n" > json
		printf "  \"benchmark\": \"BenchmarkIncrementalVsCompiled\",\n" >> json
		printf "  \"topology\": {\"services\": 1000, \"microservices_per_service\": 50, \"sharing_degree\": 10},\n" >> json
		printf "  \"dirty_frac\": 0.1,\n" >> json
		printf "  \"compiled_ns_per_window\": %.0f,\n", comp >> json
		printf "  \"incremental_ns_per_window\": %.0f,\n", incr >> json
		printf "  \"speedup\": %.2f,\n", speedup >> json
		printf "  \"gate\": \"speedup >= 5\",\n" >> json
		printf "  \"pass\": %s\n", (speedup >= 5 ? "true" : "false") >> json
		printf "}\n" >> json
		printf "bench6 speedup: %.2fx (gate >= 5): %s\n", speedup, (speedup >= 5 ? "PASS" : "FAIL")
	}' "$OUT"
	echo "wrote $OUT and $JSON"
}

bench7() {
	OUT="${BENCH_OUT:-bench_7.txt}"
	JSON="${BENCH_JSON:-BENCH_7.json}"
	echo "== bench7: simulator engine throughput (benchtime=$BENCHTIME count=$COUNT) =="
	go test -run '^$' -bench 'BenchmarkEngineThroughput' \
		-benchtime "$BENCHTIME" -count "$COUNT" -benchmem \
		./internal/sim | tee "$OUT"

	# Fold into BENCH_7.json: mean simulated requests per second for the
	# exact and hybrid engines on the 40-service shared-pool topology. The
	# acceptance gate for PR 10 is hybrid / exact >= 3.
	awk -v json="$JSON" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "req/s") {
				rps[name] += $i
				cnt[name]++
			}
		}
	}
	END {
		exact = rps["BenchmarkEngineThroughput/exact"] / cnt["BenchmarkEngineThroughput/exact"]
		hybrid = rps["BenchmarkEngineThroughput/hybrid"] / cnt["BenchmarkEngineThroughput/hybrid"]
		speedup = hybrid / exact
		printf "{\n" > json
		printf "  \"benchmark\": \"BenchmarkEngineThroughput\",\n" >> json
		printf "  \"topology\": {\"services\": 40, \"sharing_block\": 4, \"containers_per_microservice\": 2, \"hosts\": 16},\n" >> json
		printf "  \"exact_requests_per_sec\": %.0f,\n", exact >> json
		printf "  \"hybrid_requests_per_sec\": %.0f,\n", hybrid >> json
		printf "  \"speedup\": %.2f,\n", speedup >> json
		printf "  \"gate\": \"speedup >= 3\",\n" >> json
		printf "  \"pass\": %s\n", (speedup >= 3 ? "true" : "false") >> json
		printf "}\n" >> json
		printf "bench7 speedup: %.2fx (gate >= 3): %s\n", speedup, (speedup >= 3 ? "PASS" : "FAIL")
	}' "$OUT"
	echo "wrote $OUT and $JSON"
}

case "$TARGET" in
bench5) bench5 ;;
bench6) bench6 ;;
bench7) bench7 ;;
all)
	bench5
	bench6
	bench7
	;;
*)
	echo "usage: scripts/bench.sh [bench5|bench6|bench7|all]" >&2
	exit 2
	;;
esac
