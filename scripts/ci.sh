#!/usr/bin/env sh
# CI gate: vet, build, and run the full test suite under the race detector.
# The -race pass is what validates the parallel experiment fan-out — the
# worker pool, the per-run seed handoff, and the ordered result folds all
# run concurrently in the determinism tests.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The self-observability layer promises a free disabled path: every obs
# call on a nil recorder must cost zero allocations. testing.AllocsPerRun
# is meaningless under -race (the detector itself allocates), so the gate
# runs without it.
echo "== zero-alloc gate (obs disabled path) =="
go test -run 'ZeroAlloc' -count=1 ./internal/obs

# The race pass above runs every package once at the default worker count.
# Re-run the chaos determinism gate explicitly at two pool sizes: the fault
# schedule, every injection, and all three control loops must render
# byte-identical tables whether the runners share one worker or fan out.
echo "== chaos determinism (workers=1 vs 4) =="
go test -run 'TestFaultTablesIdenticalAcrossWorkers|TestGenerateDeterministic' \
	./internal/experiments ./internal/chaos
