#!/usr/bin/env sh
# CI gate: vet, build, and run the full test suite under the race detector.
# The -race pass is what validates the parallel experiment fan-out — the
# worker pool, the per-run seed handoff, and the ordered result folds all
# run concurrently in the determinism tests.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# Zero-allocation promises, checked outside -race (the detector itself
# allocates, so testing.AllocsPerRun is meaningless there): every obs call
# on a nil recorder is free, and the simulator's event loop stays
# allocation-free in steady state — including with the resilience layer
# compiled in but disabled.
echo "== zero-alloc gates (obs disabled path, sim engine) =="
go test -run 'ZeroAlloc' -count=1 ./internal/obs ./internal/sim

# The race pass above runs every package once at the default worker count.
# Re-run the chaos determinism gate explicitly at two pool sizes: the fault
# schedule, every injection, and all three control loops must render
# byte-identical tables whether the runners share one worker or fan out.
echo "== chaos determinism (workers=1 vs 4) =="
go test -run 'TestFaultTablesIdenticalAcrossWorkers|TestGenerateDeterministic' \
	./internal/experiments ./internal/chaos

# The data-plane resilience gate: the fig23 retry-storm experiment (seeded
# retries with jittered backoff, breakers, shedding) must render
# byte-identical tables at one worker and four, and must reproduce the
# headline ordering (unbounded retries worst, budgeted ≈ no retries).
echo "== resilience determinism (fig23, workers=1 vs 4) =="
go test -run 'TestFig23' -count=1 ./internal/experiments

# The planner-scalability gate (PR 5 + PR 6): the compiled-template path must
# stay bit-identical to the naive planner, the incremental sharded planner
# must stay bit-identical to the monolithic one at shards=1 and shards=4 (and
# under random mutation sequences against the from-scratch oracle), and the
# figScale/figShard deterministic tables must be byte-identical at one worker
# and four.
echo "== planner determinism (figScale + figShard + PlanScheme + incremental, workers=1 vs 4) =="
go test -count=1 \
	-run 'TestFigScaleDeterministicAcrossWorkers|TestFigShardDeterministicAcrossWorkers|TestPlanSchemeByteIdenticalAcrossWorkers|TestPlanSchemeCachedBitIdentical|TestIncremental' \
	./internal/experiments ./internal/multiplex

# The spec front-end gates (PR 7).
#
# First, a short fuzz pass over the workload-spec parser: malformed YAML and
# JSON must produce errors, never panics, and any accepted spec must
# re-validate cleanly. The corpus seeds cover the shipped example specs.
echo "== spec parser fuzz (15s) =="
go test -run=NONE -fuzz=FuzzParse -fuzztime=15s ./internal/spec

# Second, the spec determinism gate, end to end through the real binary:
# the same spec and seed must emit a byte-identical timeline CSV across two
# runs and two worker-pool sizes. This is the whole-pipeline version of
# internal/spec's TestRunDeterminism — it also covers the CLI wiring.
echo "== spec determinism (ermsctl, 2 runs x workers 1 vs 4) =="
go build -o /tmp/ermsctl_ci ./cmd/ermsctl
/tmp/ermsctl_ci run -spec examples/quickstart/quickstart.yaml \
	-parallel 1 -timeline /tmp/spec_tl_a.csv >/dev/null
/tmp/ermsctl_ci run -spec examples/quickstart/quickstart.yaml \
	-parallel 1 -timeline /tmp/spec_tl_b.csv >/dev/null
/tmp/ermsctl_ci run -spec examples/quickstart/quickstart.yaml \
	-parallel 4 -timeline /tmp/spec_tl_c.csv >/dev/null
cmp /tmp/spec_tl_a.csv /tmp/spec_tl_b.csv
cmp /tmp/spec_tl_a.csv /tmp/spec_tl_c.csv
rm -f /tmp/ermsctl_ci /tmp/spec_tl_a.csv /tmp/spec_tl_b.csv /tmp/spec_tl_c.csv

# Third, the SLO-tier contract: under the flash-crowd spec the sheddable
# tier's violation rate must be at least the critical tier's, and admission
# control must shed more sheddable than critical traffic. Also re-pins the
# spec-built-vs-code-built golden equality at two worker counts.
echo "== spec tier contract + golden equality =="
go test -count=1 -run 'TestFigSpecTierContract|TestCompileGolden|TestRunDeterminism' \
	./internal/experiments ./internal/spec

# The drift-loop gates (PR 8).
#
# TestFigDrift is the determinism + reconvergence gate: the figDrift table
# (mid-run 3x service-time shift of a shared microservice) must be
# byte-identical at one worker and four, the drift-enabled controller must
# reconverge after the shift, and the frozen controller must not.
# TestDriftDisabledPathIdentical pins that a controller without drift
# detection — and one whose detector can never fire — produce identical
# window reports (drift off is a pure observer). The obs export test is the
# counter-name contract for the new erms.self.drift_* / model_swaps series.
echo "== drift loop (figDrift determinism + disabled-path identity + counter export) =="
go test -count=1 \
	-run 'TestFigDrift|TestDriftDisabledPathIdentical|TestDriftSwapInstallsModelAndInvalidatesTemplate|TestAllCountersExportOnMetrics' \
	./internal/experiments ./internal/core ./internal/obs

# One-iteration smoke of the planner benchmarks: catches bit-rot in the
# bench harnesses and the BENCH_{5,6}.json folds without paying full
# benchtime.
echo "== bench smoke (1 iteration) =="
BENCH_SMOKE=1 BENCH_OUT=/tmp/bench_5_smoke.txt BENCH_JSON=/tmp/BENCH_5_smoke.json \
	scripts/bench.sh bench5 >/dev/null
BENCH_SMOKE=1 BENCH_OUT=/tmp/bench_6_smoke.txt BENCH_JSON=/tmp/BENCH_6_smoke.json \
	scripts/bench.sh bench6 >/dev/null

# The operator gates (PR 9).
#
# TestFigOperatorDeterministicAcrossWorkers: the figOperator rollout
# timeline (good push canaries/promotes/commits, bad push auto-rolls back)
# must render byte-identical tables at one worker and four.
# TestFigOperatorContract: the good spec must commit within 4 windows of
# its push, the 4x-tightened spec must roll back, and every fleet window
# from the bad push onward must be byte-identical to a trajectory that
# never saw it (zero fleet-wide regression beyond the canary slice).
# TestBadPushRollsBackWithFleetUntouched + the interleaving tests pin the
# same contracts at the state-machine level, including a guardrail breach
# landing in the same window as a drift model swap and pushes landing
# mid-rollout (supersede in canary, queue in soak). The obs export test is
# the counter-name contract for the erms.self.rollout_* series and the
# spec-generation gauge.
echo "== operator gates (figOperator determinism + rollback contracts + counter export) =="
go test -count=1 \
	-run 'TestFigOperator|TestOperatorFixturesMatchExamples|TestAllCountersExportOnMetrics' \
	./internal/experiments ./internal/obs
go test -count=1 ./internal/operator

# The simulator scale-out gates (PR 10).
#
# TestRunPartitionedExactIdenticalAcrossWorkersAndPartitions is the headline
# determinism contract: exact partitioned output — reservoirs, samples,
# spans, stream rows — is byte-identical at workers 1 vs 4 and at any
# Partitions setting. TestRunPartitionedHybridDeterministic pins the same
# invariance with the fluid fast path engaged, TestHybridFidelity is the
# fidelity-tolerance regression table (hybrid P95 / violation rate vs exact,
# requests conserved), and TestFigSimDeterministicAcrossWorkers renders the
# figSim deterministic table at both worker counts.
echo "== simulator scale-out (partition determinism + hybrid fidelity, workers=1 vs 4) =="
go test -count=1 \
	-run 'TestRunPartitioned|TestHybridFidelity|TestFluidEligibility|TestSharingGroups' \
	./internal/sim
go test -count=1 -run 'TestFigSimDeterministicAcrossWorkers' ./internal/experiments

# One-iteration smoke of the engine-throughput bench harness and its
# BENCH_7.json fold.
echo "== bench7 smoke (1 iteration) =="
BENCH_SMOKE=1 BENCH_OUT=/tmp/bench_7_smoke.txt BENCH_JSON=/tmp/BENCH_7_smoke.json \
	scripts/bench.sh bench7 >/dev/null
