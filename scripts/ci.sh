#!/usr/bin/env sh
# CI gate: vet, build, and run the full test suite under the race detector.
# The -race pass is what validates the parallel experiment fan-out — the
# worker pool, the per-run seed handoff, and the ordered result folds all
# run concurrently in the determinism tests.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...
