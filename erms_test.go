package erms

import (
	"testing"
)

func hotelRates(rate float64) map[string]float64 {
	return map[string]float64{"search": rate, "recommend": rate, "reserve": rate, "login": rate}
}

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(HotelReservation())
	if err != nil {
		t.Fatal(err)
	}
	sys.UseAnalyticModels()
	plan, err := sys.Plan(hotelRates(5_000))
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalContainers() <= 0 {
		t.Fatal("empty plan")
	}
	res, err := sys.Evaluate(plan, hotelRates(5_000), 1.5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for svc, v := range res.Violations {
		if v > 0.05 {
			t.Fatalf("%s violates %.1f%%", svc, v*100)
		}
	}
	if sys.TotalContainers() != plan.TotalContainers() {
		t.Fatal("deployment mismatch")
	}
}

func TestOptions(t *testing.T) {
	sys, err := NewSystem(SocialNetwork(),
		WithHosts(8), WithHostSpec(16, 32), WithScheme(SchemeFCFS), WithDelta(0.1), WithPOPGroups(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.UseAnalyticModels()
	plan, err := sys.Plan(map[string]float64{
		"compose-post": 5_000, "home-timeline": 5_000, "user-timeline": 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != SchemeFCFS {
		t.Fatalf("scheme = %v", plan.Scheme)
	}
}

func TestAppsConstructors(t *testing.T) {
	for _, app := range []*App{SocialNetwork(), MediaService(), HotelReservation(),
		Alibaba(AlibabaConfig{Seed: 1, Services: 5, MeanGraphSize: 8})} {
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
}

func TestSLAHelper(t *testing.T) {
	s := P95SLA("svc", 100)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetBackground(t *testing.T) {
	sys, err := NewSystem(HotelReservation(), WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetBackground(1, 0.4, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetBackground(9, 0.4, 0.3); err == nil {
		t.Fatal("bad host accepted")
	}
	if sys.Controller() == nil {
		t.Fatal("controller not exposed")
	}
}

func TestExplainAndReconcilerFacade(t *testing.T) {
	sys, err := NewSystem(HotelReservation())
	if err != nil {
		t.Fatal(err)
	}
	sys.UseAnalyticModels()
	out, err := sys.Explain("search", hotelRates(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty explanation")
	}
	if _, err := sys.Explain("nope", hotelRates(10_000)); err == nil {
		t.Fatal("unknown service accepted")
	}
	r := sys.NewReconciler()
	r.WindowMin = 0.6
	rep, err := r.Step(hotelRates(10_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Containers <= 0 {
		t.Fatal("reconciler deployed nothing")
	}
}
